// Package classify post-processes microbenchmark mismatch logs the way the
// paper's beam-testing methodology does (§4, §5): it filters intermittent
// (displacement-damage) errors by flagging entries with repeated errors
// across write passes, clusters the remaining records into soft-error
// events by onset time, classifies each event's breadth and severity
// (SBSE/SBME/MBSE/MBME, byte-aligned or not), and derives the Table-1
// pattern probabilities.
package classify

import (
	"sort"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/hbm2"
	"hbm2ecc/internal/microbench"
	"hbm2ecc/internal/stats"
)

// EventClass is the paper's Fig. 4a breadth/severity taxonomy.
type EventClass int

const (
	// SBSE: single-bit, single-entry.
	SBSE EventClass = iota
	// SBME: single-bit, multiple-entry.
	SBME
	// MBSE: multiple-bit, single-entry.
	MBSE
	// MBME: multiple-bit, multiple-entry.
	MBME
	NumClasses
)

func (c EventClass) String() string {
	switch c {
	case SBSE:
		return "SBSE"
	case SBME:
		return "SBME"
	case MBSE:
		return "MBSE"
	case MBME:
		return "MBME"
	default:
		return "Class(?)"
	}
}

// EntryError is one entry's share of an event.
type EntryError struct {
	Entry int64
	// Mask is the data-visible error (wire layout, ECC area zero).
	Mask bitvec.V288
}

// Event is one clustered soft-error event.
type Event struct {
	Onset   float64
	Entries []EntryError
	Class   EventClass
	// ByteAligned: within every affected 64b word of every entry, the
	// error is confined to one aligned byte. Meaningful for multi-bit
	// events.
	ByteAligned bool
	// Pattern is the event's Table-1 class (most severe per-entry
	// pattern).
	Pattern errormodel.Pattern
}

// Breadth returns the number of affected entries.
func (e *Event) Breadth() int { return len(e.Entries) }

// MultiBit reports whether any entry has more than one erroneous bit.
func (e *Event) MultiBit() bool { return e.Class == MBSE || e.Class == MBME }

// Options tunes the pipeline.
type Options struct {
	// ClusterGap is the maximum onset gap between records of one event.
	// An event landing mid-read-pass is first observed across two
	// passes (entries already read that pass only mismatch on the next
	// one), so the gap must exceed two pass durations or broad events
	// split into fragments; with the default 0.05s pass it defaults to
	// 0.125s, still far below the beam's mean time to event.
	ClusterGap float64
	// DamageThreshold is the number of distinct write passes with errors
	// that marks an entry as damaged (intermittent). Default 2.
	DamageThreshold int
}

func (o *Options) defaults() {
	if o.ClusterGap == 0 {
		o.ClusterGap = 0.125
	}
	if o.DamageThreshold == 0 {
		o.DamageThreshold = 2
	}
}

// Direction tallies of intermittent errors (for the unidirectionality
// analysis of §4).
type Direction struct {
	OneToZero int
	ZeroToOne int
}

// Analysis is the pipeline output.
type Analysis struct {
	Events []Event
	// DamagedEntries are entries classified as intermittent and filtered.
	DamagedEntries map[int64]bool
	// IntermittentRecords counts filtered records.
	IntermittentRecords int
	// IntermittentDirection tallies bit-flip directions among filtered
	// records.
	IntermittentDirection Direction
	// DiscardedRuns counts logs dropped by the host-side checks.
	DiscardedRuns int
	TotalRuns     int
}

// Analyze runs the full pipeline over a set of microbenchmark logs.
func Analyze(logs []*microbench.Log, opts Options) *Analysis {
	opts.defaults()
	a := &Analysis{DamagedEntries: map[int64]bool{}}

	type recKey struct {
		run, writePass int
	}
	passesWithError := map[int64]map[recKey]bool{}
	var usable []*microbench.Log
	for i, log := range logs {
		a.TotalRuns++
		if log.Discarded {
			a.DiscardedRuns++
			continue
		}
		usable = append(usable, log)
		for _, r := range log.Records {
			m := passesWithError[r.Entry]
			if m == nil {
				m = map[recKey]bool{}
				passesWithError[r.Entry] = m
			}
			m[recKey{i, r.WritePass}] = true
		}
	}
	for entry, passes := range passesWithError {
		if len(passes) >= opts.DamageThreshold {
			a.DamagedEntries[entry] = true
		}
	}

	// Collect per-(run, writePass, entry) onsets of non-damaged entries,
	// tally intermittent directions for damaged ones.
	type onset struct {
		time  float64
		entry int64
		mask  bitvec.V288
	}
	var onsets []onset
	for _, log := range usable {
		type wpEntry struct {
			writePass int
			entry     int64
		}
		seen := map[wpEntry]bool{}
		for _, r := range log.Records {
			if a.DamagedEntries[r.Entry] {
				a.IntermittentRecords++
				tallyDirection(&a.IntermittentDirection, r)
				continue
			}
			k := wpEntry{r.WritePass, r.Entry}
			if seen[k] {
				continue
			}
			seen[k] = true
			onsets = append(onsets, onset{r.Time, r.Entry, errMask(r)})
		}
	}
	sort.Slice(onsets, func(i, j int) bool { return onsets[i].time < onsets[j].time })

	// Gap-based clustering into events.
	for i := 0; i < len(onsets); {
		j := i + 1
		for j < len(onsets) && onsets[j].time-onsets[j-1].time <= opts.ClusterGap {
			j++
		}
		ev := Event{Onset: onsets[i].time}
		for _, o := range onsets[i:j] {
			ev.Entries = append(ev.Entries, EntryError{Entry: o.entry, Mask: o.mask})
		}
		finishEvent(&ev)
		a.Events = append(a.Events, ev)
		i = j
	}
	return a
}

func tallyDirection(d *Direction, r microbench.Record) {
	for i := 0; i < hbm2.EntryBytes; i++ {
		diff := r.Expected[i] ^ r.Got[i]
		if diff == 0 {
			continue
		}
		for b := 0; b < 8; b++ {
			if diff>>uint(b)&1 == 0 {
				continue
			}
			if r.Expected[i]>>uint(b)&1 == 1 {
				d.OneToZero++
			} else {
				d.ZeroToOne++
			}
		}
	}
}

func errMask(r microbench.Record) bitvec.V288 {
	var xor [hbm2.EntryBytes]byte
	for i := range xor {
		xor[i] = r.Expected[i] ^ r.Got[i]
	}
	return bitvec.FromDataECC(xor, [4]byte{})
}

func finishEvent(ev *Event) {
	multi := false
	aligned := true
	worst := errormodel.Bit1
	for _, ee := range ev.Entries {
		n := ee.Mask.OnesCount()
		if n > 1 {
			multi = true
		}
		if !maskByteAligned(ee.Mask) {
			aligned = false
		}
		if p := errormodel.Classify(ee.Mask); p > worst {
			worst = p
		}
	}
	switch {
	case !multi && len(ev.Entries) == 1:
		ev.Class = SBSE
	case !multi:
		ev.Class = SBME
	case len(ev.Entries) == 1:
		ev.Class = MBSE
	default:
		ev.Class = MBME
	}
	ev.ByteAligned = aligned
	ev.Pattern = worst
}

// maskByteAligned reports whether, within every 64b word, the error bits
// are confined to a single aligned byte (the paper's byte-aligned error
// definition, Fig. 4c).
func maskByteAligned(m bitvec.V288) bool {
	for w := 0; w < bitvec.Beats; w++ {
		beat := m.Beat(w)
		if beat.IsZero() {
			continue
		}
		bits := beat.Bits()
		b0 := bits[0] / 8
		for _, b := range bits[1:] {
			if b/8 != b0 {
				return false
			}
		}
	}
	return true
}

// ClassBreakdown returns Fig. 4a: the fraction of events per class.
func (a *Analysis) ClassBreakdown() [NumClasses]stats.Proportion {
	var counts [NumClasses]int
	for _, ev := range a.Events {
		counts[ev.Class]++
	}
	var out [NumClasses]stats.Proportion
	for c := range out {
		out[c] = stats.NewProportion(counts[c], len(a.Events))
	}
	return out
}

// MBMEBreadth returns Fig. 4b: exponential-bin histogram of entries
// affected per MBME event, plus the maximum breadth.
func (a *Analysis) MBMEBreadth() (*stats.ExpBins, int) {
	max := 1
	for _, ev := range a.Events {
		if ev.Class == MBME && ev.Breadth() > max {
			max = ev.Breadth()
		}
	}
	bins := stats.NewExpBins(max)
	for _, ev := range a.Events {
		if ev.Class == MBME {
			bins.Add(ev.Breadth())
		}
	}
	return bins, max
}

// ByteAlignedFraction returns Fig. 4c's headline: the fraction of
// multi-bit events that are byte-aligned.
func (a *Analysis) ByteAlignedFraction() stats.Proportion {
	k, n := 0, 0
	for _, ev := range a.Events {
		if !ev.MultiBit() {
			continue
		}
		n++
		if ev.ByteAligned {
			k++
		}
	}
	return stats.NewProportion(k, n)
}

// WordsPerEntry returns, for multi-bit events of the given alignment, the
// distribution of affected 64b words per erroneous entry (Fig. 4c's
// stacked bars): index i holds the count of entries with i+1 affected
// words.
func (a *Analysis) WordsPerEntry(byteAligned bool) [4]int {
	var out [4]int
	for _, ev := range a.Events {
		if !ev.MultiBit() || ev.ByteAligned != byteAligned {
			continue
		}
		for _, ee := range ev.Entries {
			words := 0
			for w := 0; w < bitvec.Beats; w++ {
				if !ee.Mask.Beat(w).IsZero() {
					words++
				}
			}
			if words >= 1 {
				out[words-1]++
			}
		}
	}
	return out
}

// SeverityHistogram returns Fig. 5: for multi-bit events of the given
// alignment, a histogram of erroneous bits per affected word, and the
// count of full inversions (all 8 bits of a byte, or all 64 of a word).
func (a *Analysis) SeverityHistogram(byteAligned bool) (hist map[int]int, inversions, total int) {
	hist = map[int]int{}
	maxBits := 64
	if byteAligned {
		maxBits = 8
	}
	for _, ev := range a.Events {
		if !ev.MultiBit() || ev.ByteAligned != byteAligned {
			continue
		}
		for _, ee := range ev.Entries {
			for w := 0; w < bitvec.Beats; w++ {
				n := ee.Mask.Beat(w).OnesCount()
				if n == 0 {
					continue
				}
				hist[n]++
				total++
				if n == maxBits {
					inversions++
				}
			}
		}
	}
	return hist, inversions, total
}

// Table1 derives the measured per-event pattern probabilities, the
// analogue of the paper's Table 1.
func (a *Analysis) Table1() [errormodel.NumPatterns]stats.Proportion {
	var counts [errormodel.NumPatterns]int
	for _, ev := range a.Events {
		counts[ev.Pattern]++
	}
	var out [errormodel.NumPatterns]stats.Proportion
	for p := range out {
		out[p] = stats.NewProportion(counts[p], len(a.Events))
	}
	return out
}

// Table1Weights converts the measured per-pattern proportions to a
// weight vector usable with evalmc.SchemeResult.WeightedWith — e.g. to
// reweight scheme evaluations by a campaign observed through an on-die
// ECC stage instead of the paper's published Table 1.
func (a *Analysis) Table1Weights() [errormodel.NumPatterns]float64 {
	t := a.Table1()
	var out [errormodel.NumPatterns]float64
	for p := range out {
		out[p] = t[p].P
	}
	return out
}

// MultiBitFraction returns the share of events that are multi-bit
// (MBSE+MBME) — the §5 "~31.5% of SEUs affect multiple bits" headline is
// per-word; per-event the reproduction reports this figure.
func (a *Analysis) MultiBitFraction() stats.Proportion {
	k := 0
	for _, ev := range a.Events {
		if ev.MultiBit() {
			k++
		}
	}
	return stats.NewProportion(k, len(a.Events))
}
