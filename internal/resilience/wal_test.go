package resilience

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func collect(dst *[][]byte) func([]byte) error {
	return func(rec []byte) error {
		*dst = append(*dst, append([]byte(nil), rec...))
		return nil
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 100 {
		t.Fatalf("records = %d, want 100", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	w2, err := OpenWAL(path, WALOptions{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Records() != 100 || len(got) != 100 {
		t.Fatalf("replayed %d records (counter %d), want 100", len(got), w2.Records())
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestWALTornTail simulates a crash mid-append at every possible cut
// point of the final record: replay must recover the intact prefix,
// truncate the torn bytes, and accept new appends afterwards.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	build := func(name string) (string, [][]byte) {
		path := filepath.Join(dir, name)
		w, err := OpenWAL(path, WALOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var recs [][]byte
		for i := 0; i < 5; i++ {
			rec := []byte(fmt.Sprintf("intact-%d-payload", i))
			recs = append(recs, rec)
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path, recs
	}

	path, recs := build("sizes.log")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := walHeader + len(recs[0])
	intact := len(full) - frame // bytes up to the last record's start
	for cut := intact + 1; cut < len(full); cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.log", cut))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		w, err := OpenWAL(torn, WALOptions{}, collect(&got))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 4 {
			t.Fatalf("cut %d: replayed %d records, want 4", cut, len(got))
		}
		// Appends after a torn-tail truncation land on a clean boundary.
		if err := w.Append([]byte("after-crash")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got = nil
		w2, err := OpenWAL(torn, WALOptions{}, collect(&got))
		if err != nil {
			t.Fatal(err)
		}
		w2.Close()
		if len(got) != 5 || string(got[4]) != "after-crash" {
			t.Fatalf("cut %d: post-crash log has %d records", cut, len(got))
		}
	}
}

// TestWALCorruptRecord flips a payload byte mid-log: replay must stop
// at the corrupt record (frame boundaries past it are untrusted) and
// keep only the intact prefix.
func TestWALCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frameLens := make([]int, 0, 5)
	for i := 0; i < 5; i++ {
		rec := []byte(fmt.Sprintf("record-%d", i))
		frameLens = append(frameLens, walHeader+len(rec))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte of record 2.
	off := frameLens[0] + frameLens[1] + walHeader
	raw[off] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	w2, err := OpenWAL(path, WALOptions{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(got))
	}
	if w2.Size() != int64(frameLens[0]+frameLens[1]) {
		t.Fatalf("corrupt suffix not truncated: size %d", w2.Size())
	}
}

// TestWALGarbageLength writes a frame header claiming an absurd record
// size: replay must treat it as a torn tail, not attempt the alloc.
func TestWALGarbageLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, WALOptions{MaxRecord: 1 << 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	garbage := []byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 9, 9}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var got [][]byte
	w2, err := OpenWAL(path, WALOptions{MaxRecord: 1 << 10}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 1 || string(got[0]) != "ok" {
		t.Fatalf("replay over garbage header = %q", got)
	}
	if err := w2.Append([]byte("again")); err != nil {
		t.Fatal(err)
	}
}

func TestWALResetAfterCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 || w.Size() != 0 {
		t.Fatalf("after reset: records=%d size=%d", w.Records(), w.Size())
	}
	if err := w.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	w2, err := OpenWAL(path, WALOptions{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if len(got) != 1 || string(got[0]) != "post-compact" {
		t.Fatalf("post-reset replay = %q", got)
	}
}

func TestWALRecordBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, WALOptions{MaxRecord: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, 9)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if err := w.Append(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestWALReplayCallbackError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, WALOptions{}, func([]byte) error {
		return fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("replay callback error not surfaced")
	}
}
