package resilience

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRetirementThreshold(t *testing.T) {
	tab := NewRetirementTable(RetirementPolicy{ErrorThreshold: 3, SpareRows: 2})
	if tab.Record(10) || tab.Record(10) {
		t.Fatal("row retired below threshold")
	}
	if tab.Retired(10) {
		t.Fatal("row marked retired below threshold")
	}
	if !tab.Record(10) {
		t.Fatal("row not retired at threshold")
	}
	if !tab.Retired(10) || tab.RetiredCount() != 1 || tab.SparesLeft() != 1 {
		t.Fatalf("retirement state wrong: count=%d spares=%d", tab.RetiredCount(), tab.SparesLeft())
	}
	// Errors on a retired row are ignored (spare is pristine).
	if tab.Record(10) {
		t.Fatal("retired row retired again")
	}
	if tab.errs[10] != 3 {
		t.Fatalf("retired row still accruing errors: %d", tab.errs[10])
	}
}

func TestRetirementSpareExhaustion(t *testing.T) {
	tab := NewRetirementTable(RetirementPolicy{ErrorThreshold: 1, SpareRows: 2})
	for row := int64(0); row < 2; row++ {
		if !tab.Record(row) {
			t.Fatalf("row %d not retired", row)
		}
	}
	if tab.Record(99) {
		t.Fatal("retired past the spare pool")
	}
	if tab.Dropped() != 1 || tab.SparesLeft() != 0 {
		t.Fatalf("dropped=%d sparesLeft=%d", tab.Dropped(), tab.SparesLeft())
	}
	rows := tab.Rows()
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 1 {
		t.Fatalf("Rows() = %v", rows)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := NewRetryPolicy(4, 1e-6, 1e-3, 7)
	prevMax := 0.0
	for attempt := 1; attempt < 4; attempt++ {
		d, ok := p.NextDelay(attempt)
		if !ok {
			t.Fatalf("attempt %d refused within budget", attempt)
		}
		// Delay must stay inside the jittered envelope for the attempt.
		base := 1e-6
		for i := 1; i < attempt; i++ {
			base *= 2
		}
		if d < base*0.5 || d > base*1.5 {
			t.Fatalf("attempt %d delay %g outside [%g,%g]", attempt, d, base*0.5, base*1.5)
		}
		if d > 1e-3 {
			t.Fatalf("delay %g above cap", d)
		}
		prevMax = d
	}
	_ = prevMax
	if _, ok := p.NextDelay(4); ok {
		t.Fatal("retry budget not enforced")
	}
}

func TestRetryPolicyDeterministicJitter(t *testing.T) {
	a := NewRetryPolicy(8, 1e-6, 1e-3, 42)
	b := NewRetryPolicy(8, 1e-6, 1e-3, 42)
	for attempt := 1; attempt < 8; attempt++ {
		da, _ := a.NextDelay(attempt)
		db, _ := b.NextDelay(attempt)
		if da != db {
			t.Fatalf("attempt %d: jitter not deterministic (%g vs %g)", attempt, da, db)
		}
	}
}

func TestDegradeGuard(t *testing.T) {
	g := NewDegradeGuard(3)
	if g.RecordDUE() || g.RecordDUE() {
		t.Fatal("degraded below budget")
	}
	if !g.RecordDUE() {
		t.Fatal("not degraded at budget")
	}
	if !g.Degraded() || g.Spent() != 3 {
		t.Fatalf("guard state wrong: degraded=%v spent=%d", g.Degraded(), g.Spent())
	}
	if g.RecordDUE() {
		t.Fatal("degradedNow reported twice")
	}
}

func TestCheckpointSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	type payload struct {
		Runs  int     `json:"runs"`
		Clock float64 `json:"clock"`
	}
	want := payload{Runs: 17, Clock: 3.25}
	if err := SaveJSON(path, want); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	var got payload
	if err := LoadJSON(path, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	// Overwrite keeps the file readable at every moment.
	want.Runs = 18
	if err := SaveJSON(path, want); err != nil {
		t.Fatal(err)
	}
	if err := LoadJSON(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.Runs != 18 {
		t.Fatalf("overwrite lost: %+v", got)
	}
}

func TestCheckpointLoadMissing(t *testing.T) {
	var v struct{}
	err := LoadJSON(filepath.Join(t.TempDir(), "absent.json"), &v)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestCheckpointLoadCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var v struct{}
	if err := LoadJSON(path, &v); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}
