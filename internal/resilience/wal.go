package resilience

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// WAL is a CRC-framed append-only write-ahead log: the durability
// primitive the fleet coordinator (and any other stateful daemon) pairs
// with SaveJSON snapshots. Each record is framed as
//
//	[len uint32 LE][crc32(payload) uint32 LE][payload]
//
// and appended with a single write(2), so every record acknowledged to
// a caller has left the process before the ack — a SIGKILL loses
// nothing that was acked. Machine-crash durability is governed by
// SyncEvery: every N appended records the append path kicks a
// background syncer goroutine that fsyncs the file, so the dirty-page
// writeback overlaps ingest instead of stalling it. The loss window of
// a whole-machine crash is the tail appended since the last fsync that
// completed — on the order of SyncEvery records, or ~50ms of ingest at
// append rates high enough to hit the syncer's rate limit. Sync and
// Close fsync
// synchronously; a failed background fsync is sticky and fails the
// next Append (durability can no longer be promised, so the caller
// must stop acking).
//
// Replay is truncation-tolerant: OpenWAL scans the log record by
// record and stops at the first frame that is short, oversized, or
// fails its CRC — the torn tail a crash mid-append leaves behind — and
// truncates the file back to the last intact record before appending
// resumes. A corrupt record therefore bounds recovery to the intact
// prefix; nothing after it can be trusted (frame boundaries are gone).
//
// WAL is not safe for concurrent use; callers serialize (the
// coordinator appends under its ingest lock). The background syncer is
// internal and synchronizes only through the kick channel and the
// sticky-error mutex.
type WAL struct {
	f       *os.File
	path    string
	records int
	size    int64
	pending int // records appended since the last fsync kick
	opts    WALOptions
	buf     []byte

	syncReq  chan struct{} // kicks the background syncer (buffered, coalescing)
	syncDone chan struct{} // closed when the syncer goroutine exits
	mu       sync.Mutex    // guards syncErr
	syncErr  error         // sticky background fsync failure
}

// WALOptions tunes a WAL.
type WALOptions struct {
	// SyncEvery kicks the background fsync after every N appended
	// records (default 1024; negative disables fsync entirely — tests
	// only). The cadence only bounds the loss window of a whole-machine
	// crash: process death never loses an acked record regardless,
	// because each append is a write(2) that reached the kernel before
	// the ack.
	SyncEvery int
	// MaxRecord bounds one record's payload (default 1 MiB). Replay
	// treats a frame claiming more as corruption.
	MaxRecord int
}

func (o *WALOptions) defaults() {
	if o.SyncEvery == 0 {
		o.SyncEvery = 1024
	}
	if o.MaxRecord <= 0 {
		o.MaxRecord = 1 << 20
	}
}

const walHeader = 8 // u32 length + u32 CRC32

// OpenWAL opens (creating if absent) the log at path and replays every
// intact record through fn in append order before returning the WAL
// ready for appends. A torn or corrupt tail is truncated away; fn
// returning an error aborts the open (the log is left untouched).
// fn may be nil to skip replay (the records still count toward
// compaction bookkeeping).
func OpenWAL(path string, opts WALOptions, fn func(rec []byte) error) (*WAL, error) {
	opts.defaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{f: f, path: path, opts: opts}
	if err := w.replay(fn); err != nil {
		f.Close()
		return nil, err
	}
	if opts.SyncEvery > 0 {
		w.syncReq = make(chan struct{}, 1)
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// minSyncGap rate-limits the background syncer. An fsync writes back
// the shared tail page while the appender is still filling it, and the
// appender then stalls on stable-page writeback — back-to-back
// background fsyncs at six-figure append rates cost more in those
// stalls than they buy. One flush per gap keeps contention flat under
// load; at realistic report rates the gap never engages.
const minSyncGap = 50 * time.Millisecond

// syncLoop is the background syncer: each kick fsyncs everything
// written so far, at most once per minSyncGap. Kicks coalesce (the
// channel holds one), so a slow or rate-limited flush absorbs the
// cadence behind it in a single fsync. A failure is sticky — recorded
// once and surfaced by the next Append or Sync.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	var last time.Time
	for range w.syncReq {
		if d := time.Since(last); d < minSyncGap {
			time.Sleep(minSyncGap - d)
		}
		last = time.Now()
		if err := w.f.Sync(); err != nil {
			w.mu.Lock()
			if w.syncErr == nil {
				w.syncErr = fmt.Errorf("wal: background sync: %w", err)
			}
			w.mu.Unlock()
		}
	}
}

// bgErr reports the sticky background-sync failure, if any.
func (w *WAL) bgErr() error {
	if w.syncReq == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncErr
}

// stopSyncer shuts the background syncer down and waits for it.
func (w *WAL) stopSyncer() {
	if w.syncReq == nil {
		return
	}
	close(w.syncReq)
	<-w.syncDone
	w.syncReq = nil
}

// replay scans the log from the start, calling fn per intact record,
// and truncates at the first sign of a torn tail.
func (w *WAL) replay(fn func(rec []byte) error) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var (
		off    int64
		header [walHeader]byte
	)
	for {
		if _, err := io.ReadFull(w.f, header[:]); err != nil {
			// io.EOF: clean end. ErrUnexpectedEOF: torn header.
			break
		}
		n := binary.LittleEndian.Uint32(header[0:])
		crc := binary.LittleEndian.Uint32(header[4:])
		if int(n) > w.opts.MaxRecord {
			break // garbage length; cannot trust the frame
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(w.f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt record; everything after is untrusted
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return fmt.Errorf("wal: replaying record %d: %w", w.records, err)
			}
		}
		w.records++
		off += walHeader + int64(n)
	}
	if err := w.f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.size = off
	return nil
}

// Append frames rec and writes it with one write(2) call, so the
// record survives a process kill the moment Append returns. Returns
// the first error encountered; after an error the log should be
// considered failed (the caller decides whether to refuse new work).
func (w *WAL) Append(rec []byte) error {
	if err := w.bgErr(); err != nil {
		return err
	}
	if len(rec) > w.opts.MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds %d", len(rec), w.opts.MaxRecord)
	}
	need := walHeader + len(rec)
	if cap(w.buf) < need {
		w.buf = make([]byte, need, need*2)
	}
	frame := w.buf[:need]
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(rec))
	copy(frame[walHeader:], rec)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.records++
	w.size += int64(need)
	w.pending++
	if w.opts.SyncEvery > 0 && w.pending >= w.opts.SyncEvery {
		w.pending = 0
		select {
		case w.syncReq <- struct{}{}:
		default: // a kick is already queued; its fsync will cover this record
		}
	}
	return nil
}

// Sync fsyncs the log synchronously (machine-crash durability up to
// this record). Concurrent with the background syncer this is safe —
// fsync on the same fd serializes in the kernel.
func (w *WAL) Sync() error {
	w.pending = 0
	if w.opts.SyncEvery < 0 {
		return nil
	}
	if err := w.bgErr(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Reset truncates the log to empty — called after the state it covers
// has been compacted into a durable snapshot. The snapshot must be on
// disk before Reset; if the process dies between snapshot and Reset,
// replaying the stale records over the snapshot must be idempotent
// (the coordinator's seq dedup guarantees this).
func (w *WAL) Reset() error {
	if err := w.bgErr(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	w.records, w.size, w.pending = 0, 0, 0
	if w.opts.SyncEvery >= 0 {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	return nil
}

// Records returns the number of records in the log (replayed plus
// appended since open or the last Reset).
func (w *WAL) Records() int { return w.records }

// Size returns the log's byte length.
func (w *WAL) Size() int64 { return w.size }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close stops the background syncer, syncs, and closes the log.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	w.stopSyncer()
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return err
	}
	return nil
}
