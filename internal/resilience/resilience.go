// Package resilience provides the fault-tolerance building blocks the
// simulated fleet composes on top of the device model: a weak-row
// retirement table (the paper's §4 weak-cell filter turned into the
// dynamic page/row retirement production GPUs ship), retry with
// exponential backoff and deterministic jitter for transient faults, a
// DUE budget that drops a device into degraded mode once uncorrectable
// errors exhaust it, and atomic JSON checkpoints so long campaigns can
// be killed and resumed without losing or skewing statistics.
//
// All counters flow into the internal/obs Default registry so any
// /metrics surface (cmd/obsd, beamsim -metrics, ...) reports them.
package resilience

import (
	"math/rand"
	"sort"

	"hbm2ecc/internal/obs"
)

// Process-wide resilience telemetry. The unlabeled series are resolved
// eagerly so the families appear in /metrics from process start.
var (
	mRowsRetired = obs.NewCounter("resilience_rows_retired_total",
		"Weak DRAM rows offlined by the retirement table.").With()
	mRetireDropped = obs.NewCounter("resilience_retirements_dropped_total",
		"Retirement requests dropped because the spare-row pool was empty.").With()
	mRetries = obs.NewCounter("resilience_retries_total",
		"Read retries issued for transient or detected-uncorrectable faults.").With()
	mRetryGiveups = obs.NewCounter("resilience_retry_giveups_total",
		"Reads that exhausted their retry budget without a clean decode.").With()
	mDegradations = obs.NewCounter("resilience_degradations_total",
		"Devices that entered degraded mode after DUE budget exhaustion.").With()
	mSparesInUse = obs.NewGauge("resilience_spare_rows_in_use",
		"Spare rows currently holding remapped (retired) weak rows.").With()
)

// RetirementPolicy bounds the retirement table.
type RetirementPolicy struct {
	// ErrorThreshold is the number of observed errors on one row before
	// it is retired (default 2 — mirroring the paper's "errors in two or
	// more write passes means displacement damage" filter).
	ErrorThreshold int
	// SpareRows is the pool of spare rows available for remapping
	// (default 64). When exhausted, weak rows keep erroring and the
	// drops are counted.
	SpareRows int
}

func (p *RetirementPolicy) defaults() {
	if p.ErrorThreshold <= 0 {
		p.ErrorThreshold = 2
	}
	if p.SpareRows <= 0 {
		p.SpareRows = 64
	}
}

// RetirementTable tracks per-row repeat errors and offlines rows that
// cross the policy threshold, remapping them to spare rows. It is not
// safe for concurrent use; callers serialize (the device model is
// single-threaded by design).
type RetirementTable struct {
	policy  RetirementPolicy
	errs    map[int64]int
	retired map[int64]int // row key -> spare slot
	dropped int
}

// NewRetirementTable builds an empty table under the given policy.
func NewRetirementTable(policy RetirementPolicy) *RetirementTable {
	policy.defaults()
	return &RetirementTable{
		policy:  policy,
		errs:    make(map[int64]int),
		retired: make(map[int64]int),
	}
}

// Policy returns the effective (defaulted) policy.
func (t *RetirementTable) Policy() RetirementPolicy { return t.policy }

// Record notes one error on a row and reports whether this call retired
// it. Errors on already-retired rows are ignored (the spare row is
// pristine; residual errors there are the caller's fault model talking).
func (t *RetirementTable) Record(row int64) (retiredNow bool) {
	if _, ok := t.retired[row]; ok {
		return false
	}
	t.errs[row]++
	if t.errs[row] < t.policy.ErrorThreshold {
		return false
	}
	if len(t.retired) >= t.policy.SpareRows {
		t.dropped++
		mRetireDropped.Inc()
		return false
	}
	t.retired[row] = len(t.retired)
	mRowsRetired.Inc()
	mSparesInUse.Set(float64(len(t.retired)))
	return true
}

// Retired reports whether the row has been offlined.
func (t *RetirementTable) Retired(row int64) bool {
	_, ok := t.retired[row]
	return ok
}

// RetiredCount returns the number of offlined rows.
func (t *RetirementTable) RetiredCount() int { return len(t.retired) }

// SparesLeft returns the number of spare rows still available.
func (t *RetirementTable) SparesLeft() int { return t.policy.SpareRows - len(t.retired) }

// Dropped returns retirement requests lost to spare exhaustion.
func (t *RetirementTable) Dropped() int { return t.dropped }

// Rows returns the retired row keys in sorted order.
func (t *RetirementTable) Rows() []int64 {
	out := make([]int64, 0, len(t.retired))
	for row := range t.retired {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RetryPolicy issues exponential backoff delays with deterministic
// jitter for transient-fault retries. Delays are simulated seconds (the
// device clock advances by them), not wall time.
type RetryPolicy struct {
	// MaxAttempts is the total number of read attempts including the
	// first (default 4, i.e. up to 3 retries).
	MaxAttempts int
	// Base and Max bound the backoff window in simulated seconds
	// (defaults 1µs and 1ms).
	Base, Max float64
	rng       *rand.Rand
}

// NewRetryPolicy builds a retry policy; the seed makes jitter
// reproducible run-to-run.
func NewRetryPolicy(maxAttempts int, base, max float64, seed int64) *RetryPolicy {
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	if base <= 0 {
		base = 1e-6
	}
	if max <= 0 {
		max = 1e-3
	}
	return &RetryPolicy{
		MaxAttempts: maxAttempts,
		Base:        base,
		Max:         max,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// NextDelay returns the backoff before retry number attempt (1-based:
// attempt 1 is the first retry) and whether the retry budget allows it.
// The delay doubles per attempt, is capped at Max, and carries ±50%
// jitter so synchronized retry storms decorrelate.
func (p *RetryPolicy) NextDelay(attempt int) (float64, bool) {
	if attempt >= p.MaxAttempts {
		mRetryGiveups.Inc()
		return 0, false
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.Max {
			d = p.Max
			break
		}
	}
	d *= 0.5 + p.rng.Float64() // jitter in [0.5d, 1.5d)
	if d > p.Max {
		d = p.Max
	}
	mRetries.Inc()
	return d, true
}

// DegradeGuard spends a DUE budget; once exhausted the guarded device is
// degraded (reads still complete, but the device should be drained and
// replaced — the gpud playbook for Xid 48/63/64-class errors).
type DegradeGuard struct {
	// Budget is the number of DUEs tolerated before degrading
	// (default 100).
	Budget   int
	spent    int
	degraded bool
}

// NewDegradeGuard builds a guard with the given budget (<=0 selects the
// default of 100).
func NewDegradeGuard(budget int) *DegradeGuard {
	if budget <= 0 {
		budget = 100
	}
	return &DegradeGuard{Budget: budget}
}

// RecordDUE spends one unit of budget and reports whether this call
// tipped the device into degraded mode.
func (g *DegradeGuard) RecordDUE() (degradedNow bool) {
	g.spent++
	if !g.degraded && g.spent >= g.Budget {
		g.degraded = true
		mDegradations.Inc()
		return true
	}
	return false
}

// Degraded reports whether the budget is exhausted.
func (g *DegradeGuard) Degraded() bool { return g.degraded }

// Spent returns the number of DUEs recorded.
func (g *DegradeGuard) Spent() int { return g.spent }
