package resilience

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// withSeam swaps one filesystem seam for the duration of a test.
func withSeam[T any](t *testing.T, slot *T, replacement T) {
	t.Helper()
	orig := *slot
	*slot = replacement
	t.Cleanup(func() { *slot = orig })
}

type ckPayload struct {
	Generation int    `json:"generation"`
	Note       string `json:"note"`
}

// saveThenInjectAndCheck writes a good generation-1 checkpoint, runs
// save (expected to fail against an injected fault), and asserts the
// previous checkpoint is byte-for-byte intact and no temp litter
// remains.
func saveThenInjectAndCheck(t *testing.T, inject func(t *testing.T), wantErr string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := SaveJSON(path, ckPayload{Generation: 1, Note: "good"}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	inject(t)
	err = SaveJSON(path, ckPayload{Generation: 2, Note: "doomed"})
	if err == nil || !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("SaveJSON error = %v, want containing %q", err, wantErr)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after failed save: %v", err)
	}
	if string(after) != string(before) {
		t.Fatalf("failed save clobbered the previous checkpoint:\n%s", after)
	}
	var got ckPayload
	if err := LoadJSON(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.Generation != 1 {
		t.Fatalf("recovered generation %d, want 1", got.Generation)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp litter left behind: %s", e.Name())
		}
	}
}

func TestSaveJSONWriteFailureKeepsPrevious(t *testing.T) {
	saveThenInjectAndCheck(t, func(t *testing.T) {
		withSeam(t, &fsWrite, func(*os.File, []byte) (int, error) {
			return 0, fmt.Errorf("injected: disk full")
		})
	}, "write")
}

func TestSaveJSONPartialWriteKeepsPrevious(t *testing.T) {
	saveThenInjectAndCheck(t, func(t *testing.T) {
		withSeam(t, &fsWrite, func(f *os.File, b []byte) (int, error) {
			// Half the document lands, then the "device" dies — the torn
			// temp file must never reach the destination name.
			n, _ := f.Write(b[:len(b)/2])
			return n, fmt.Errorf("injected: device gone mid-write")
		})
	}, "write")
}

func TestSaveJSONSyncFailureKeepsPrevious(t *testing.T) {
	saveThenInjectAndCheck(t, func(t *testing.T) {
		withSeam(t, &fsSync, func(*os.File) error {
			return fmt.Errorf("injected: fsync EIO")
		})
	}, "sync")
}

func TestSaveJSONRenameFailureKeepsPrevious(t *testing.T) {
	saveThenInjectAndCheck(t, func(t *testing.T) {
		withSeam(t, &fsRename, func(string, string) error {
			return fmt.Errorf("injected: rename EXDEV")
		})
	}, "rename")
}

func TestSaveJSONCreateTempFailure(t *testing.T) {
	saveThenInjectAndCheck(t, func(t *testing.T) {
		withSeam(t, &fsCreateTemp, func(string, string) (*os.File, error) {
			return nil, errors.New("injected: EACCES")
		})
	}, "EACCES")
}

// TestSaveJSONCrashBeforeRename models a process kill after the temp
// file is written but before the rename: the destination still holds
// the old generation, and a later successful save wins cleanly.
func TestSaveJSONCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := SaveJSON(path, ckPayload{Generation: 1}); err != nil {
		t.Fatal(err)
	}
	// "Crash": the rename never happens; the temp file is orphaned the
	// way a SIGKILL between close and rename would leave it.
	withSeam(t, &fsRename, func(tmp, _ string) error {
		return fmt.Errorf("injected: killed before rename (tmp %s)", filepath.Base(tmp))
	})
	_ = SaveJSON(path, ckPayload{Generation: 2})
	var got ckPayload
	if err := LoadJSON(path, &got); err != nil || got.Generation != 1 {
		t.Fatalf("after crash-before-rename: %+v, %v", got, err)
	}
	// Restart: seams restored, the next save succeeds atomically.
	t.Cleanup(func() {})
	fsRenameOrig := os.Rename
	fsRename = fsRenameOrig
	if err := SaveJSON(path, ckPayload{Generation: 3}); err != nil {
		t.Fatal(err)
	}
	if err := LoadJSON(path, &got); err != nil || got.Generation != 3 {
		t.Fatalf("post-restart save: %+v, %v", got, err)
	}
}
