package resilience

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Filesystem seams, swapped by the fault-injection tests so every
// failure leg of SaveJSON (write, fsync, close, rename) can be driven
// deterministically. Production code never touches these.
var (
	fsCreateTemp = os.CreateTemp
	fsWrite      = (*os.File).Write
	fsSync       = (*os.File).Sync
	fsRename     = os.Rename
)

// SaveJSON atomically writes v as JSON to path: the document is written
// to a temp file in the same directory, fsynced, and renamed over the
// destination, so a crash or SIGKILL mid-write never leaves a torn
// checkpoint — the previous snapshot survives intact. After the rename
// the directory is fsynced too, so the new name itself survives a
// machine crash (best effort: directory sync errors on filesystems
// that refuse it are ignored).
func SaveJSON(path string, v any) error {
	dir := filepath.Dir(path)
	f, err := fsCreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	raw, err := json.Marshal(v)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := fsWrite(f, raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := fsSync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := fsRename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadJSON reads a checkpoint written by SaveJSON into v. A missing file
// surfaces as an error wrapping os.ErrNotExist, so callers can treat
// "no checkpoint yet" as a fresh start.
func LoadJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	return nil
}
