package resilience

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SaveJSON atomically writes v as JSON to path: the document is written
// to a temp file in the same directory, fsynced, and renamed over the
// destination, so a crash or SIGKILL mid-write never leaves a torn
// checkpoint — the previous snapshot survives intact.
func SaveJSON(path string, v any) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	enc := json.NewEncoder(f)
	if err := enc.Encode(v); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// LoadJSON reads a checkpoint written by SaveJSON into v. A missing file
// surfaces as an error wrapping os.ErrNotExist, so callers can treat
// "no checkpoint yet" as a fresh start.
func LoadJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	return nil
}
