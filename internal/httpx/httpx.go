// Package httpx centralizes the hardening every HTTP surface in the
// repository applies — obsd's fleet-health endpoints and the cluster
// campaign protocol alike — so no server or client is assembled ad hoc:
//
//   - servers get conservative read/write/idle timeouts and a graceful
//     drain on context cancellation (SIGINT-clean by construction);
//   - request bodies are bounded before any handler decodes them;
//   - clients get an overall request timeout and bounded response
//     reading, so a wedged or malicious peer cannot park a goroutine or
//     balloon memory.
//
// It is stdlib-only, like the rest of the repository's infrastructure
// (the only in-repo dependency is the obs registry, itself stdlib-only,
// for the uniform per-daemon identity metrics).
package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"hbm2ecc/internal/obs"
	"hbm2ecc/internal/resilience"
)

// DefaultMaxBody bounds request and response bodies (1 MiB) unless the
// caller picks a different limit. Every protocol in this repository
// fits comfortably: the largest frame is a campaign checkpoint envelope
// at a few tens of KiB.
const DefaultMaxBody = 1 << 20

// DefaultShutdownTimeout is how long Serve waits for in-flight requests
// to drain after its context is cancelled.
const DefaultShutdownTimeout = 10 * time.Second

// NewServer returns an *http.Server with the repository's hardened
// defaults: header/read/write/idle timeouts sized for small JSON APIs.
// The handler is wrapped with MaxBytes(DefaultMaxBody); pass a
// pre-wrapped handler through NewServerLimit to pick another bound.
func NewServer(addr string, h http.Handler) *http.Server {
	return NewServerLimit(addr, h, DefaultMaxBody)
}

// NewServerLimit is NewServer with an explicit request-body bound
// (limit <= 0 leaves bodies unbounded — only for handlers that never
// read them).
func NewServerLimit(addr string, h http.Handler, limit int64) *http.Server {
	if limit > 0 {
		h = MaxBytes(h, limit)
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// MaxBytes bounds every request body seen by next: reads past limit
// fail, and handlers decoding JSON surface the standard
// *http.MaxBytesError.
func MaxBytes(next http.Handler, limit int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		next.ServeHTTP(w, r)
	})
}

// Serve runs srv on ln until ctx is cancelled, then shuts it down
// gracefully, waiting up to shutdownTimeout (<=0 selects the default)
// for in-flight requests. It returns nil on a clean shutdown and the
// serve error otherwise.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, shutdownTimeout time.Duration) error {
	if shutdownTimeout <= 0 {
		shutdownTimeout = DefaultShutdownTimeout
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("httpx: shutdown: %w", err)
		}
		<-errc // always http.ErrServerClosed after Shutdown
		return nil
	}
}

// ListenAndServe is Serve with a listener opened from srv.Addr.
func ListenAndServe(ctx context.Context, srv *http.Server, shutdownTimeout time.Duration) error {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return err
	}
	return Serve(ctx, srv, ln, shutdownTimeout)
}

// SignalContext returns a context cancelled on SIGINT/SIGTERM — the
// shared first line of every daemon main (obsd, campaignd, decoded).
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Daemon is the shared HTTP daemon bootstrap: a hardened server bound
// to a listener whose address is known immediately (so ":0" works for
// tests and smoke scripts), serving in the background until its context
// is cancelled, then draining gracefully. It consolidates the
// listen/serve/drain scaffolding cmd/obsd, cmd/campaignd and
// cmd/decoded would otherwise each assemble by hand.
type Daemon struct {
	srv  *http.Server
	ln   net.Listener
	done chan error
}

// StartDaemon listens on addr and serves h (wrapped with MaxBytes when
// limit > 0) until ctx is cancelled. The returned Daemon is already
// accepting connections; call Wait to block for the graceful drain.
//
// component names the daemon for the standard identity series every
// daemon exposes uniformly on its /metrics endpoint (via the obs
// Default registry): <component>_build_info{go_version,module} with
// constant value 1, and <component>_uptime_seconds, refreshed once a
// second until ctx is cancelled. An empty component skips both.
func StartDaemon(ctx context.Context, component, addr string, h http.Handler, limit int64) (*Daemon, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		srv:  NewServerLimit("", h, limit),
		ln:   ln,
		done: make(chan error, 1),
	}
	registerDaemonMetrics(ctx, component)
	go func() { d.done <- Serve(ctx, d.srv, ln, DefaultShutdownTimeout) }()
	return d, nil
}

// registerDaemonMetrics publishes the per-daemon identity series.
// Registration is idempotent (obs returns the existing family), so
// restarting a daemon in-process — tests do — is safe.
func registerDaemonMetrics(ctx context.Context, component string) {
	if component == "" {
		return
	}
	obs.NewGauge(component+"_build_info",
		"Build metadata for the "+component+" daemon (value is constant 1).",
		"go_version", "module").
		With(runtime.Version(), "hbm2ecc").Set(1)
	up := obs.NewGauge(component+"_uptime_seconds",
		"Seconds since the "+component+" daemon started.").With()
	up.Set(0)
	start := time.Now()
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				up.Set(time.Since(start).Seconds())
			}
		}
	}()
}

// Addr returns the daemon's bound address (resolves ":0" listens).
func (d *Daemon) Addr() net.Addr { return d.ln.Addr() }

// URL returns the daemon's base URL ("http://host:port").
func (d *Daemon) URL() string { return "http://" + d.ln.Addr().String() }

// Wait blocks until the serve loop has exited (after the start context
// is cancelled and in-flight requests drained). It returns nil on a
// clean shutdown and the serve error otherwise, and is safe to call
// exactly once.
func (d *Daemon) Wait() error { return <-d.done }

// WriteJSON writes v as a JSON response with the given status code.
// Encoding errors past the header are unrecoverable and dropped.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Error writes a JSON error body with the given status code.
func Error(w http.ResponseWriter, code int, msg string) {
	WriteJSON(w, code, map[string]string{"error": msg})
}

// ReadBody reads a request body to completion under limit (<=0 selects
// DefaultMaxBody). It composes with MaxBytes: whichever bound is
// tighter wins.
func ReadBody(r *http.Request, limit int64) ([]byte, error) {
	if limit <= 0 {
		limit = DefaultMaxBody
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("httpx: request body exceeds %d bytes", limit)
	}
	return body, nil
}

// Client is a hardened JSON-over-HTTP client: overall per-request
// timeout, bounded response bodies, JSON round-tripping, and optional
// jittered-backoff retries for transient failures.
type Client struct {
	// HTTP is the underlying client (its Timeout bounds each request
	// end to end).
	HTTP *http.Client
	// MaxBody bounds response bodies (0 selects DefaultMaxBody).
	MaxBody int64
	// Retry, when non-nil, retries transient failures — network errors,
	// 5xx and 429 responses, and undecodable (corrupted) response
	// frames — with the policy's jittered exponential backoff (the
	// policy's Base/Max are read as seconds). Context cancellation and
	// other 4xx responses are never retried. Nil keeps the single-shot
	// behavior.
	Retry *resilience.RetryPolicy

	// retryMu serializes draws from Retry's internal RNG when one
	// client is shared across goroutines (cluster workers are).
	retryMu sync.Mutex
}

// NewClient builds a Client with the given end-to-end request timeout
// (<=0 selects 30s).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Client{HTTP: &http.Client{Timeout: timeout}}
}

func (c *Client) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return DefaultMaxBody
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	limit := c.maxBody()
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return fmt.Errorf("httpx: reading response: %w", err)
	}
	if int64(len(body)) > limit {
		return fmt.Errorf("httpx: response body exceeds %d bytes", limit)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &StatusError{Code: resp.StatusCode, Body: string(truncate(body, 256))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("httpx: decoding response: %w", err)
	}
	return nil
}

// doRetry runs build+do once, then — when Retry is set and the failure
// is transient — again under the policy's backoff schedule until the
// policy gives up or the context dies. The request is rebuilt for every
// attempt so bodies are always fresh readers.
func (c *Client) doRetry(ctx context.Context, build func() (*http.Request, error), out any) error {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return err
		}
		err = c.do(req, out)
		if err == nil || c.Retry == nil || !Retryable(err) {
			return err
		}
		c.retryMu.Lock()
		delay, ok := c.Retry.NextDelay(attempt)
		c.retryMu.Unlock()
		if !ok {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(delay * float64(time.Second))):
		}
	}
}

// Retryable reports whether err is a transient failure a retry could
// cure: network errors, corrupted/undecodable responses, and 5xx/429
// statuses. Context cancellation and the remaining 4xx family (the
// peer deliberately rejected the request) are permanent.
func Retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500 || se.Code == http.StatusTooManyRequests
	}
	return true
}

// PostJSON POSTs in as JSON to url and decodes the response into out
// (out may be nil to discard the body).
func (c *Client) PostJSON(ctx context.Context, url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("httpx: encoding request: %w", err)
	}
	return c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, out)
}

// GetJSON GETs url and decodes the response into out.
func (c *Client) GetJSON(ctx context.Context, url string, out any) error {
	return c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}, out)
}

// StatusError is a non-2xx HTTP response surfaced as an error.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("httpx: HTTP %d: %s", e.Code, e.Body)
}

func truncate(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}
