package httpx

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hbm2ecc/internal/resilience"
)

// retryClient returns a client whose backoff is fast enough for tests
// (millisecond-scale) but still exercises the real policy machinery.
func retryClient(attempts int) *Client {
	c := NewClient(5 * time.Second)
	c.Retry = resilience.NewRetryPolicy(attempts, 0.001, 0.01, 1)
	return c
}

func TestRetryRidesOutTransientServerErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, "not yet", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()

	var out struct {
		OK bool `json:"ok"`
	}
	if err := retryClient(8).PostJSON(context.Background(), srv.URL, map[string]int{"x": 1}, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || hits.Load() != 3 {
		t.Fatalf("ok=%v after %d hits, want success on attempt 3", out.OK, hits.Load())
	}
}

func TestRetryNeverRepeatsClientErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad frame", http.StatusUnprocessableEntity)
	}))
	defer srv.Close()

	err := retryClient(8).PostJSON(context.Background(), srv.URL, map[string]int{"x": 1}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422 StatusError", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("4xx was retried: %d hits", hits.Load())
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "always down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	err := retryClient(3).GetJSON(context.Background(), srv.URL, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("err = %v, want 500 StatusError", err)
	}
	// MaxAttempts=3 admits attempts 0,1,2 then gives up: 4 requests total
	// (NextDelay(0..2) succeed, NextDelay(3) refuses).
	if hits.Load() != 4 {
		t.Fatalf("%d requests against a dead server, want 4", hits.Load())
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()

	c := NewClient(5 * time.Second)
	c.Retry = resilience.NewRetryPolicy(100, 0.05, 1.0, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.GetJSON(ctx, srv.URL, nil)
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled retry loop ran %v", elapsed)
	}
}

func TestRetryNilPolicyIsSingleShot(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	if err := NewClient(5*time.Second).GetJSON(context.Background(), srv.URL, nil); err == nil {
		t.Fatal("want error")
	}
	if hits.Load() != 1 {
		t.Fatalf("nil-policy client sent %d requests, want 1", hits.Load())
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{&StatusError{Code: 500}, true},
		{&StatusError{Code: 503}, true},
		{&StatusError{Code: 429}, true},
		{&StatusError{Code: 400}, false},
		{&StatusError{Code: 404}, false},
		{&StatusError{Code: 422}, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("dial tcp: connection refused"), true},
		{fmt.Errorf("httpx: decoding response: %w", errors.New("bad json")), true},
	} {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
