package httpx

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"hbm2ecc/internal/obs"
)

// TestClientCancelReleasesInFlightRequest locks the disconnect path the
// serving tier depends on: cancelling the caller's context aborts an
// in-flight request promptly (surfacing context.Canceled), and the
// server-side request context is cancelled with it.
func TestClientCancelReleasesInFlightRequest(t *testing.T) {
	entered := make(chan struct{}, 1)
	serverSaw := make(chan struct{}, 1)
	base, _ := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-r.Context().Done() // the client disconnect must propagate here
		serverSaw <- struct{}{}
	}), 0)

	c := NewClient(30 * time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.GetJSON(ctx, base+"/", nil) }()

	<-entered
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled request returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request still in flight after 5s")
	}
	select {
	case <-serverSaw:
	case <-time.After(5 * time.Second):
		t.Fatal("server-side request context never cancelled")
	}
}

// TestClientDeadlineBoundsSlowServer: a context deadline bounds the wait
// on a server that never answers.
func TestClientDeadlineBoundsSlowServer(t *testing.T) {
	base, _ := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only watches for a client
		// disconnect (which cancels r.Context()) once the body is read.
		_, _ = io.ReadAll(r.Body)
		<-r.Context().Done()
	}), 0)
	c := NewClient(30 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.PostJSON(ctx, base+"/", map[string]int{"x": 1}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline honored after %s", el)
	}
}

// TestClientStopsReadingStreamingOverflow: a response streamed past
// MaxBody fails with the overflow error after reading at most
// MaxBody+1 bytes — the client never buffers an attacker-sized body.
func TestClientStopsReadingStreamingOverflow(t *testing.T) {
	const chunk = 1 << 10
	base, _ := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, _ := w.(http.Flusher)
		buf := []byte(strings.Repeat("s", chunk))
		for i := 0; i < (1<<20)/chunk; i++ {
			if _, err := w.Write(buf); err != nil {
				return // client hung up — expected
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}), 0)

	c := NewClient(30 * time.Second)
	c.MaxBody = 4 * chunk
	start := time.Now()
	err := c.GetJSON(context.Background(), base+"/", new(any))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("streaming overflow: err = %v, want body-bound error", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("overflow detected only after %s", el)
	}
}

func TestStartDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d, err := StartDaemon(ctx, "testd", "127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}), DefaultMaxBody)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", d.URL())
	}

	var out struct {
		OK bool `json:"ok"`
	}
	c := NewClient(5 * time.Second)
	if err := c.GetJSON(context.Background(), d.URL()+"/", &out); err != nil || !out.OK {
		t.Fatalf("daemon request: %v (ok=%v)", err, out.OK)
	}

	// The bootstrap registered the daemon's identity series on the obs
	// Default registry.
	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `testd_build_info{go_version="`+runtime.Version()+`",module="hbm2ecc"} 1`) {
		t.Errorf("metrics missing testd_build_info:\n%s", text)
	}
	if !strings.Contains(text, "testd_uptime_seconds") {
		t.Errorf("metrics missing testd_uptime_seconds:\n%s", text)
	}

	cancel()
	if err := d.Wait(); err != nil {
		t.Fatalf("Wait after cancel: %v", err)
	}
	// The listener is released: a fresh daemon can bind the same port.
	ctx2, cancel2 := context.WithCancel(context.Background())
	d2, err := StartDaemon(ctx2, "", d.Addr().String(), http.NotFoundHandler(), 0)
	if err != nil {
		t.Fatalf("rebinding drained daemon's port: %v", err)
	}
	cancel2()
	if err := d2.Wait(); err != nil {
		t.Errorf("second daemon drain: %v", err)
	}
}
