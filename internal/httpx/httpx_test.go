package httpx

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startServer serves h on a loopback listener through Serve and returns
// its base URL plus a shutdown function.
func startServer(t *testing.T, h http.Handler, limit int64) (string, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, NewServerLimit("", h, limit), ln, time.Second) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return "http://" + ln.Addr().String(), cancel
}

func TestMaxBytesRejectsOversizedBody(t *testing.T) {
	base, _ := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.ReadAll(r.Body); err != nil {
			var mbe *http.MaxBytesError
			if !errors.As(err, &mbe) {
				t.Errorf("body read error = %v, want MaxBytesError", err)
			}
			Error(w, http.StatusRequestEntityTooLarge, "too large")
			return
		}
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}), 64)

	c := NewClient(5 * time.Second)
	err := c.PostJSON(context.Background(), base+"/", strings.Repeat("x", 1024), nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST: err = %v, want 413", err)
	}
	if err := c.PostJSON(context.Background(), base+"/", "small", nil); err != nil {
		t.Fatalf("bounded POST failed: %v", err)
	}
}

func TestReadBodyLimit(t *testing.T) {
	got := make(chan error, 1)
	base, _ := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, err := ReadBody(r, 16)
		got <- err
		WriteJSON(w, http.StatusOK, nil)
	}), 0)
	c := NewClient(5 * time.Second)
	if err := c.PostJSON(context.Background(), base+"/", strings.Repeat("y", 64), nil); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err == nil {
		t.Fatal("ReadBody accepted a body past its limit")
	}
}

func TestClientBoundsResponses(t *testing.T) {
	base, _ := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(strings.Repeat("z", 2048)))
	}), 0)
	c := NewClient(5 * time.Second)
	c.MaxBody = 128
	if err := c.GetJSON(context.Background(), base+"/", new(any)); err == nil {
		t.Fatal("client accepted a response past MaxBody")
	}
}

func TestClientSurfacesStatusErrors(t *testing.T) {
	base, _ := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		Error(w, http.StatusUnprocessableEntity, "nope")
	}), 0)
	c := NewClient(5 * time.Second)
	err := c.GetJSON(context.Background(), base+"/", nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want StatusError 422", err)
	}
	if !strings.Contains(se.Body, "nope") {
		t.Fatalf("status error body = %q", se.Body)
	}
}

func TestServeDrainsGracefully(t *testing.T) {
	var served atomic.Int64
	release := make(chan struct{})
	base, cancel := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		served.Add(1)
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}), 0)

	c := NewClient(10 * time.Second)
	reqDone := make(chan error, 1)
	go func() { reqDone <- c.GetJSON(context.Background(), base+"/", nil) }()
	time.Sleep(50 * time.Millisecond) // let the request reach the handler

	// Cancelling the serve context must wait for the in-flight request.
	cancel()
	time.Sleep(50 * time.Millisecond)
	close(release)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed during graceful shutdown: %v", err)
	}
	if served.Load() != 1 {
		t.Fatalf("served = %d, want 1", served.Load())
	}
}
