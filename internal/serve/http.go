package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"hbm2ecc/internal/httpx"
)

// Handler returns the service's HTTP surface:
//
//	POST /v1/decode  — single + batch decode (503 + Retry-After on shed)
//	GET  /v1/schemes — served schemes and their degrade state
//	GET  /metrics    — Prometheus text (the service's registry)
//	GET  /healthz    — 200 {"status":"ok"|"degraded", ...}
//
// Serve it behind httpx (bounded bodies, timeouts, graceful drain);
// cmd/decoded does exactly that.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decode", s.handleDecode)
	mux.HandleFunc("/v1/schemes", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, SchemesResponse{
			Version: ProtocolVersion,
			Schemes: s.Status(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		var degraded []string
		for _, st := range s.Status() {
			if st.Degraded {
				degraded = append(degraded, st.Name)
			}
		}
		// A degraded scheme answers detect-only; the server is still
		// serving, so this stays 200 (the body carries the downgrade).
		if len(degraded) > 0 {
			status = "degraded"
		}
		httpx.WriteJSON(w, http.StatusOK, map[string]any{
			"status":    status,
			"degraded":  degraded,
			"uptime_ms": time.Since(s.start).Milliseconds(),
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		_, _ = w.Write([]byte("hbm2ecc decoded — online ECC decode service\n" +
			"endpoints: POST /v1/decode, GET /v1/schemes /metrics /healthz\n"))
	})
	return mux
}

func (s *Service) handleDecode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpx.WriteJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	body, err := httpx.ReadBody(r, MaxFrame)
	if err != nil {
		code := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
		}
		httpx.WriteJSON(w, code, ErrorResponse{Error: err.Error()})
		return
	}
	req, err := DecodeDecodeRequest(body)
	if err != nil {
		httpx.WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	entries, err := req.ParseEntries()
	if err != nil {
		httpx.WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	ss, ok := s.schemes[req.Scheme]
	if !ok {
		httpx.WriteJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown scheme " + strconv.Quote(req.Scheme)})
		return
	}

	// The request context (cancelled on client disconnect) bounds the
	// wait; the service adds its own deadline from admission.
	reply, err := s.Decode(r.Context(), req.Scheme, entries)
	switch {
	case err == nil:
		resp := DecodeResponse{
			Scheme:       req.Scheme,
			Degraded:     reply.Degraded,
			BatchEntries: reply.BatchEntries,
			Results:      make([]EntryResult, len(reply.Results)),
		}
		for i, wr := range reply.Results {
			resp.Results[i] = EntryResultOf(ss.scheme, wr)
		}
		httpx.WriteJSON(w, http.StatusOK, resp)
	case IsShed(err):
		var oe *OverloadError
		errors.As(err, &oe)
		writeShed(w, oe)
	case errors.Is(err, ErrShutdown):
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		httpx.WriteJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: err.Error(), Shed: true, Reason: "shutdown",
			RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
		})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client is gone (or its deadline passed); nothing useful can
		// be written, but send a best-effort 503 for proxies that are
		// still listening.
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		httpx.WriteJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: err.Error(), Shed: true, Reason: "canceled",
			RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
		})
	default:
		httpx.WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
	}
}

func writeShed(w http.ResponseWriter, oe *OverloadError) {
	w.Header().Set("Retry-After", retryAfterSeconds(oe.RetryAfter))
	httpx.WriteJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		Error:        oe.Error(),
		Shed:         true,
		Reason:       oe.Reason,
		RetryAfterMS: oe.RetryAfter.Milliseconds(),
	})
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (the header has no sub-second form).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
