package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/ecc"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/obs"
)

// testConfig returns a config with a private registry so tests don't
// pollute (or race on) the process-wide Default.
func testConfig(schemes ...core.Scheme) Config {
	return Config{Schemes: schemes, Registry: obs.NewRegistry()}
}

// corpus draws received words for a scheme: clean and corrupted by the
// sampled Monte-Carlo classes.
func corpus(s core.Scheme, n int, seed int64) []bitvec.V288 {
	rng := rand.New(rand.NewSource(seed))
	smp := errormodel.NewSampler(seed)
	classes := []errormodel.Pattern{errormodel.Bits3, errormodel.Beat1, errormodel.Entry1}
	out := make([]bitvec.V288, n)
	for i := range out {
		var data [bitvec.DataBytes]byte
		rng.Read(data[:])
		wire := s.Encode(data)
		if rng.Intn(4) != 0 {
			wire = wire.Xor(smp.Sample(classes[rng.Intn(len(classes))]))
		}
		out[i] = wire
	}
	return out
}

// TestDecodeMatchesDirect is the differential lock: for every Table-2
// scheme, concurrent micro-batched serving returns exactly what a
// direct DecodeWire call returns, entry for entry.
func TestDecodeMatchesDirect(t *testing.T) {
	schemes := core.Table2Schemes()
	svc, err := New(testConfig(schemes...))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var wg sync.WaitGroup
	errc := make(chan error, len(schemes))
	for _, s := range schemes {
		wg.Add(1)
		go func(s core.Scheme) {
			defer wg.Done()
			words := corpus(s, 200, 42)
			// Issue in small spans so coalescing has something to do.
			for off := 0; off < len(words); off += 5 {
				span := words[off : off+5]
				reply, err := svc.Decode(context.Background(), s.Name(), span)
				if err != nil {
					errc <- err
					return
				}
				if reply.Degraded {
					errc <- errors.New(s.Name() + ": unexpectedly degraded")
					return
				}
				for i, wr := range reply.Results {
					want := s.DecodeWire(span[i])
					if wr.Status != want.Status || wr.Wire != want.Wire || wr.CorrectedBits != want.CorrectedBits {
						errc <- errors.New(s.Name() + ": served result differs from direct decode")
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// slowDecoder wraps a decoder, sleeping per call — enough for the
// batcher to accumulate a backlog deterministically.
type slowDecoder struct {
	core.BatchDecoder
	delay time.Duration
}

func (d slowDecoder) DecodeWireBatch(recv []bitvec.V288, out []core.WireResult) {
	time.Sleep(d.delay)
	d.BatchDecoder.DecodeWireBatch(recv, out)
}

func TestMicroBatchCoalesces(t *testing.T) {
	s := core.NewDuetECC()
	cfg := testConfig(s)
	cfg.Workers = 1
	cfg.MaxWait = 5 * time.Millisecond
	cfg.DecoderFor = func(sc core.Scheme) core.BatchDecoder {
		return slowDecoder{core.AsBatchDecoder(sc), 2 * time.Millisecond}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	words := corpus(s, 32, 7)
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxBatch := 0
	for _, w := range words {
		wg.Add(1)
		go func(w bitvec.V288) {
			defer wg.Done()
			reply, err := svc.Decode(context.Background(), s.Name(), []bitvec.V288{w})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if reply.BatchEntries > maxBatch {
				maxBatch = reply.BatchEntries
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if maxBatch < 2 {
		t.Fatalf("no request was served from a coalesced batch (max batch %d)", maxBatch)
	}
}

// gateDecoder signals on entered when a decode call starts, then blocks
// until released via gate — pinning the single worker at a known point
// so the queue fills deterministically.
type gateDecoder struct {
	core.BatchDecoder
	entered chan struct{} // buffered: late decodes must not wedge on it
	gate    chan struct{}
}

func (d gateDecoder) DecodeWireBatch(recv []bitvec.V288, out []core.WireResult) {
	d.entered <- struct{}{}
	<-d.gate
	d.BatchDecoder.DecodeWireBatch(recv, out)
}

func TestAdmissionControlSheds(t *testing.T) {
	s := core.NewDuetECC()
	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	cfg := testConfig(s)
	cfg.Workers = 1
	cfg.MaxBatch = 1 // no coalescing: the worker holds exactly one span
	cfg.MaxQueue = 4
	cfg.DecoderFor = func(sc core.Scheme) core.BatchDecoder {
		return gateDecoder{core.AsBatchDecoder(sc), entered, gate}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	words := corpus(s, 8, 9)
	// First request occupies the worker (dequeued, blocked in decode)...
	firstDone := make(chan error, 1)
	go func() {
		_, err := svc.Decode(context.Background(), s.Name(), words[:1])
		firstDone <- err
	}()
	<-entered // the worker now holds the first request at the gate
	// ...the next four fill the queue budget...
	var wg sync.WaitGroup
	queuedDone := make(chan error, 4)
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := svc.Decode(context.Background(), s.Name(), words[i:i+1])
			queuedDone <- err
		}(i)
	}
	waitQueued(t, svc, s.Name(), 4)
	// ...and the fifth is shed with a Retry-After hint.
	_, err = svc.Decode(context.Background(), s.Name(), words[5:6])
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue" {
		t.Fatalf("overflow request: err = %v, want queue OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("shed without a Retry-After hint: %+v", oe)
	}
	if !IsShed(err) {
		t.Fatal("IsShed does not recognize an OverloadError")
	}

	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatalf("first request: %v", err)
	}
	wg.Wait()
	close(queuedDone)
	for err := range queuedDone {
		if err != nil {
			t.Errorf("queued request: %v", err)
		}
	}
}

// waitQueued polls until the scheme's queue depth reaches want entries.
func waitQueued(t *testing.T, svc *Service, scheme string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, st := range svc.Status() {
			if st.Name == scheme && st.QueuedEntries == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d: %+v", want, svc.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDeadlineExpiryInQueueSheds(t *testing.T) {
	s := core.NewDuetECC()
	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	cfg := testConfig(s)
	cfg.Workers = 1
	cfg.MaxBatch = 1
	cfg.Deadline = 10 * time.Millisecond
	cfg.DecoderFor = func(sc core.Scheme) core.BatchDecoder {
		return gateDecoder{core.AsBatchDecoder(sc), entered, gate}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	words := corpus(s, 2, 11)
	firstDone := make(chan error, 1)
	go func() {
		_, err := svc.Decode(context.Background(), s.Name(), words[:1])
		firstDone <- err
	}()
	<-entered // the worker holds the first request before its deadline
	secondDone := make(chan error, 1)
	go func() {
		_, err := svc.Decode(context.Background(), s.Name(), words[1:2])
		secondDone <- err
	}()
	waitQueued(t, svc, s.Name(), 1)
	time.Sleep(3 * cfg.Deadline) // let the second request expire in queue
	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatalf("first request: %v", err)
	}
	err = <-secondDone
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "deadline" {
		t.Fatalf("expired request: err = %v, want deadline OverloadError", err)
	}
}

func TestCancelledContextReleasesRequest(t *testing.T) {
	s := core.NewDuetECC()
	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	cfg := testConfig(s)
	cfg.Workers = 1
	cfg.MaxBatch = 1
	cfg.DecoderFor = func(sc core.Scheme) core.BatchDecoder {
		return gateDecoder{core.AsBatchDecoder(sc), entered, gate}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	words := corpus(s, 2, 13)
	firstDone := make(chan error, 1)
	go func() {
		_, err := svc.Decode(context.Background(), s.Name(), words[:1])
		firstDone <- err
	}()
	<-entered // the worker now holds the first request at the gate

	ctx, cancel := context.WithCancel(context.Background())
	secondDone := make(chan error, 1)
	go func() {
		_, err := svc.Decode(ctx, s.Name(), words[1:2])
		secondDone <- err
	}()
	waitQueued(t, svc, s.Name(), 1)
	cancel()
	if err := <-secondDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request: err = %v, want context.Canceled", err)
	}
	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatalf("first request: %v", err)
	}
	// The worker must release the cancelled span without wedging.
	reply, err := svc.Decode(context.Background(), s.Name(), words[:1])
	if err != nil || len(reply.Results) != 1 {
		t.Fatalf("service wedged after cancellation: %v", err)
	}
}

// faultyDecoder panics on every batch call — the chaos stand-in for a
// corrupted decode table or a poisoned code path.
type faultyDecoder struct{ inner core.BatchDecoder }

func (d faultyDecoder) DecodeWireBatch(recv []bitvec.V288, out []core.WireResult) {
	panic("serve test: injected decoder fault")
}

func TestDegradeGuardDropsSchemeToDetectOnly(t *testing.T) {
	bad, good := core.NewDuetECC(), core.NewTrioECC()
	cfg := testConfig(bad, good)
	cfg.Workers = 1
	cfg.DegradeBudget = 3
	cfg.DecoderFor = func(sc core.Scheme) core.BatchDecoder {
		if sc.Name() == bad.Name() {
			return faultyDecoder{core.AsBatchDecoder(sc)}
		}
		return core.AsBatchDecoder(sc)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	words := corpus(bad, 4, 17)
	// Each single-entry request costs one fault: the batch call panics
	// and the per-entry fallback (the scheme's own DecodeWire) does
	// not. Budget 3 => the third request trips the guard.
	sawDegraded := false
	for i := 0; i < 4; i++ {
		reply, err := svc.Decode(context.Background(), bad.Name(), words[i:i+1])
		if err != nil {
			t.Fatalf("request %d: %v (a faulting scheme must answer, not error)", i, err)
		}
		if reply.Degraded {
			sawDegraded = true
			for _, wr := range reply.Results {
				if wr.Status != ecc.Detected {
					t.Fatalf("degraded reply carries status %v, want Detected", wr.Status)
				}
			}
		}
	}
	if !sawDegraded {
		t.Fatal("scheme never degraded despite exhausting its fault budget")
	}
	var st SchemeStatus
	for _, s := range svc.Status() {
		if s.Name == bad.Name() {
			st = s
		}
	}
	if !st.Degraded || st.Faults < 3 {
		t.Fatalf("status = %+v, want degraded with >= 3 faults", st)
	}

	// The healthy scheme is unaffected: full corrective service.
	w := corpus(good, 1, 19)
	reply, err := svc.Decode(context.Background(), good.Name(), w)
	if err != nil || reply.Degraded {
		t.Fatalf("healthy scheme affected by sibling degrade: reply=%+v err=%v", reply, err)
	}
	want := good.DecodeWire(w[0])
	if reply.Results[0] != want {
		t.Fatal("healthy scheme result differs from direct decode")
	}
}

func TestDecodeValidatesCalls(t *testing.T) {
	svc, err := New(testConfig(core.NewDuetECC()))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Decode(context.Background(), "NoSuch", make([]bitvec.V288, 1)); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := svc.Decode(context.Background(), "DuetECC", nil); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := svc.Decode(context.Background(), "DuetECC", make([]bitvec.V288, MaxRequestEntries+1)); err == nil {
		t.Error("oversized request accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Decode(ctx, "DuetECC", make([]bitvec.V288, 1)); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled context: err = %v", err)
	}
}

func TestDecodeAfterCloseIsShutdown(t *testing.T) {
	svc, err := New(testConfig(core.NewDuetECC()))
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // idempotent
	if _, err := svc.Decode(context.Background(), "DuetECC", make([]bitvec.V288, 1)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-close request: err = %v, want ErrShutdown", err)
	}
}
