package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/httpx"
)

func postJSON(t *testing.T, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

func TestHTTPDecodeEndToEnd(t *testing.T) {
	s := core.NewDuetECC()
	svc, err := New(testConfig(s, core.NewTrioECC()))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	words := corpus(s, 24, 7)
	req := DecodeRequest{Scheme: s.Name()}
	for _, w := range words {
		req.Entries = append(req.Entries, FormatEntry(w))
	}
	body, _ := json.Marshal(req)
	code, _, raw := postJSON(t, ts.URL+"/v1/decode", body)
	if code != http.StatusOK {
		t.Fatalf("decode: status %d, body %s", code, raw)
	}
	resp, err := DecodeDecodeResponse(raw)
	if err != nil {
		t.Fatalf("response fails strict codec: %v", err)
	}
	if resp.Scheme != s.Name() || len(resp.Results) != len(words) {
		t.Fatalf("response shape: %+v", resp)
	}
	// Differential: the HTTP answer must match a direct decode.
	for i, w := range words {
		want := EntryResultOf(s, s.DecodeWire(w))
		if resp.Results[i] != want {
			t.Fatalf("entry %d: got %+v, want %+v", i, resp.Results[i], want)
		}
	}
}

func TestHTTPDecodeErrors(t *testing.T) {
	s := core.NewDuetECC()
	svc, err := New(testConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// The production stack (cmd/decoded) serves the handler behind
	// httpx.MaxBytes, which is what turns an oversized body into a 413.
	ts := httptest.NewServer(httpx.MaxBytes(svc.Handler(), MaxFrame))
	defer ts.Close()

	entry := FormatEntry(s.Encode([bitvec.DataBytes]byte{}))

	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/decode")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
			t.Fatalf("GET /v1/decode: %d, Allow %q", resp.StatusCode, resp.Header.Get("Allow"))
		}
	})
	t.Run("bad json", func(t *testing.T) {
		for _, b := range []string{
			`{"scheme":"DuetECC"`,
			`{"scheme":"DuetECC","entries":["` + entry + `"],"extra":1}`,
			`{"scheme":"DuetECC","entries":["` + entry + `"]} junk`,
			`{"scheme":"DuetECC","entries":["nothex"]}`,
		} {
			code, _, raw := postJSON(t, ts.URL+"/v1/decode", []byte(b))
			if code != http.StatusBadRequest {
				t.Errorf("frame %.40q: status %d, body %s", b, code, raw)
			}
		}
	})
	t.Run("unknown scheme", func(t *testing.T) {
		body, _ := json.Marshal(DecodeRequest{Scheme: "NoSuchECC", Entries: []string{entry}})
		code, _, _ := postJSON(t, ts.URL+"/v1/decode", body)
		if code != http.StatusNotFound {
			t.Errorf("unknown scheme: status %d", code)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		code, _, _ := postJSON(t, ts.URL+"/v1/decode", make([]byte, MaxFrame+1))
		if code != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized body: status %d", code)
		}
	})
}

func TestHTTPShedsWith503AndRetryAfter(t *testing.T) {
	s := core.NewDuetECC()
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	cfg := testConfig(s)
	cfg.Workers = 1
	cfg.MaxBatch = 1
	cfg.MaxQueue = 1
	cfg.Deadline = time.Minute // queued requests must not expire while gated
	cfg.RetryAfter = 1500 * time.Millisecond
	cfg.DecoderFor = func(sc core.Scheme) core.BatchDecoder {
		return gateDecoder{core.AsBatchDecoder(sc), entered, gate}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer close(gate)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, _ := json.Marshal(DecodeRequest{
		Scheme:  s.Name(),
		Entries: []string{FormatEntry(s.Encode([bitvec.DataBytes]byte{1}))},
	})

	// First request occupies the gated worker; second fills the queue.
	occupied := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := postJSON(t, ts.URL+"/v1/decode", body)
			if code != http.StatusOK {
				t.Errorf("held request finished with %d", code)
			}
			occupied <- struct{}{}
		}()
		if i == 0 {
			<-entered // the worker now holds the first request at the gate
		}
	}
	waitQueued(t, svc, s.Name(), 1)

	code, hdr, raw := postJSON(t, ts.URL+"/v1/decode", body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overload: status %d, body %s", code, raw)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want whole seconds >= 1", hdr.Get("Retry-After"))
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Shed || er.Reason != "queue" || er.RetryAfterMS != 1500 {
		t.Errorf("shed body = %+v", er)
	}

	gate <- struct{}{}
	gate <- struct{}{}
	<-occupied
	<-occupied
}

func TestHTTPSchemesHealthzMetrics(t *testing.T) {
	svc, err := New(testConfig(core.Table2Schemes()...))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	code, raw := get("/v1/schemes")
	if code != http.StatusOK {
		t.Fatalf("/v1/schemes: %d", code)
	}
	sr, err := DecodeSchemesResponse(raw)
	if err != nil {
		t.Fatalf("schemes response fails strict codec: %v", err)
	}
	if len(sr.Schemes) != len(core.Table2Schemes()) {
		t.Errorf("schemes listed: %d", len(sr.Schemes))
	}
	for _, st := range sr.Schemes {
		if st.Degraded {
			t.Errorf("fresh scheme %s reports degraded", st.Name)
		}
	}

	code, raw = get("/healthz")
	var hz struct {
		Status string `json:"status"`
	}
	if code != http.StatusOK || json.Unmarshal(raw, &hz) != nil || hz.Status != "ok" {
		t.Errorf("/healthz: %d %s", code, raw)
	}

	// Exercise one decode so the metric families have samples.
	body, _ := json.Marshal(DecodeRequest{
		Scheme:  "DuetECC",
		Entries: []string{FormatEntry(core.NewDuetECC().Encode([bitvec.DataBytes]byte{2}))},
	})
	if code, _, _ := postJSON(t, ts.URL+"/v1/decode", body); code != http.StatusOK {
		t.Fatalf("decode: %d", code)
	}
	code, raw = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"serve_requests_total", "serve_batch_entries", "serve_entries_decoded_total"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("/metrics missing family %s", want)
		}
	}
}

// TestHTTPClientDisconnectCancels locks the cancel-on-disconnect path:
// a client that goes away while its request waits on a gated worker must
// release the span (outcome "canceled"), not hold queue budget.
func TestHTTPClientDisconnectCancels(t *testing.T) {
	s := core.NewDuetECC()
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	cfg := testConfig(s)
	cfg.Workers = 1
	cfg.MaxBatch = 1
	cfg.MaxQueue = 4
	cfg.Deadline = time.Minute
	cfg.DecoderFor = func(sc core.Scheme) core.BatchDecoder {
		return gateDecoder{core.AsBatchDecoder(sc), entered, gate}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer close(gate)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, _ := json.Marshal(DecodeRequest{
		Scheme:  s.Name(),
		Entries: []string{FormatEntry(s.Encode([bitvec.DataBytes]byte{3}))},
	})

	// Hold the worker with one request, then disconnect a queued one.
	held := make(chan struct{})
	go func() {
		defer close(held)
		code, _, _ := postJSON(t, ts.URL+"/v1/decode", body)
		if code != http.StatusOK {
			t.Errorf("held request finished with %d", code)
		}
	}()
	<-entered // the worker now holds the first request at the gate

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/decode", bytes.NewReader(body))
	waitErr := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		waitErr <- err
	}()
	waitQueued(t, svc, s.Name(), 1)
	cancel() // client disconnects mid-queue
	if err := <-waitErr; err == nil {
		t.Error("cancelled client request returned without error")
	}

	// Release the worker: it finishes the held request, then dequeues the
	// disconnected span and must release it without decoding (the batch
	// of one cancelled span never reaches the decoder, so the gate is not
	// pulled again) — freeing its queue budget.
	gate <- struct{}{}
	<-held
	waitQueued(t, svc, s.Name(), 0)
}
