package serve

import (
	"math/rand"
	"strings"
	"testing"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/core"
)

func TestEntryHexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		var v bitvec.V288
		for b := 0; b < bitvec.EntryBytes; b++ {
			v = v.SetByte(b, byte(rng.Intn(256)))
		}
		s := FormatEntry(v)
		if len(s) != 2*bitvec.EntryBytes {
			t.Fatalf("FormatEntry length %d", len(s))
		}
		got, err := ParseEntry(s)
		if err != nil || got != v {
			t.Fatalf("round trip: %v -> %v (err %v)", v, got, err)
		}
	}
	if _, err := ParseEntry("zz"); err == nil {
		t.Error("short non-hex entry accepted")
	}
	if _, err := ParseEntry(strings.Repeat("g", 72)); err == nil {
		t.Error("non-hex entry accepted")
	}
}

func TestDecodeRequestValidation(t *testing.T) {
	good := `{"scheme":"DuetECC","entries":["` + strings.Repeat("0", 72) + `"]}`
	if _, err := DecodeDecodeRequest([]byte(good)); err != nil {
		t.Fatalf("good request rejected: %v", err)
	}
	bad := []string{
		`{"scheme":"","entries":["` + strings.Repeat("0", 72) + `"]}`,              // empty scheme
		`{"scheme":"DuetECC","entries":[]}`,                                        // no entries
		`{"scheme":"DuetECC","entries":["abc"]}`,                                   // short entry
		`{"scheme":"DuetECC","entries":["` + strings.Repeat("g", 72) + `"]}`,       // non-hex
		`{"scheme":"DuetECC","entries":["` + strings.Repeat("0", 72) + `"],"x":1}`, // unknown field
		good + ` trailing`, // trailing garbage
		`{"scheme":"` + strings.Repeat("s", MaxSchemeName+1) + `","entries":["` + strings.Repeat("0", 72) + `"]}`,
	}
	for _, b := range bad {
		if _, err := DecodeDecodeRequest([]byte(b)); err == nil {
			t.Errorf("accepted bad frame: %.60s", b)
		}
	}
	// Oversized batch.
	entries := make([]string, MaxRequestEntries+1)
	for i := range entries {
		entries[i] = strings.Repeat("0", 72)
	}
	req := DecodeRequest{Scheme: "DuetECC", Entries: entries}
	if err := req.Validate(); err == nil {
		t.Error("oversized batch accepted")
	}
	// Oversized frame rejected before decode.
	if _, err := DecodeDecodeRequest(make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestEntryResultOfAndResponseValidation(t *testing.T) {
	s := core.NewDuetECC()
	var data [bitvec.DataBytes]byte
	for i := range data {
		data[i] = byte(i)
	}
	wire := s.Encode(data)

	clean := EntryResultOf(s, s.DecodeWire(wire))
	if clean.Status != StatusOK || clean.Data != FormatData(data) || clean.CorrectedBits != 0 {
		t.Fatalf("clean result = %+v", clean)
	}
	corr := EntryResultOf(s, s.DecodeWire(wire.FlipBit(17)))
	if corr.Status != StatusCorrected || corr.Data != FormatData(data) || corr.CorrectedBits == 0 {
		t.Fatalf("corrected result = %+v", corr)
	}

	resp := DecodeResponse{Scheme: s.Name(), Results: []EntryResult{clean, corr}}
	if err := resp.Validate(); err != nil {
		t.Fatalf("good response rejected: %v", err)
	}
	resp.Results[0].Status = "weird"
	if err := resp.Validate(); err == nil {
		t.Error("bad status accepted")
	}
	resp.Results[0] = EntryResult{Status: StatusDetected, Data: FormatData(data)}
	if err := resp.Validate(); err == nil {
		t.Error("detected-with-data accepted")
	}
	resp.Results[0] = EntryResult{Status: StatusOK, Data: "1234"}
	if err := resp.Validate(); err == nil {
		t.Error("short data accepted")
	}
}
