package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/stats"
)

// This file is the load-generation engine shared by cmd/loadgen (HTTP
// tier) and cmd/bench -serve (service tier): closed-loop (a fixed set
// of connections issuing back-to-back requests — measures capacity) and
// open-loop (a fixed offered rate regardless of completions — measures
// behavior under a chosen load, including overload).
//
// Open-loop latencies are measured from the tick that *intended* the
// request, not from when a worker got around to issuing it, so client-
// side queueing counts against the server (no coordinated omission up
// to the generator's own saturation, which is reported separately as
// Overruns).

// LoadOutcome classifies one request for accounting.
type LoadOutcome int

const (
	// LoadOK is a served request (entries counted via the Entries
	// return).
	LoadOK LoadOutcome = iota
	// LoadShed is a load-shedding rejection (503/OverloadError).
	LoadShed
	// LoadError is any other failure (transport, codec, server error).
	LoadError
)

// LoadFunc issues one request. It reports the outcome class and, for
// LoadOK, how many entries the reply carried.
type LoadFunc func(ctx context.Context) (LoadOutcome, int)

// LoadOptions configures one generator run.
type LoadOptions struct {
	// Conns is the number of concurrent request loops (default 8).
	Conns int
	// Duration is how long to offer load (default 2s).
	Duration time.Duration
	// Rate is the offered request rate per second; 0 runs closed-loop
	// (every conn issues back-to-back).
	Rate float64
}

func (o *LoadOptions) defaults() {
	if o.Conns <= 0 {
		o.Conns = 8
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
}

// LoadStats is one generator run's report.
type LoadStats struct {
	// Closed reports the loop mode.
	Closed bool `json:"closed_loop"`
	// OfferedRate is the configured open-loop rate (0 for closed).
	OfferedRate float64 `json:"offered_rate,omitempty"`
	// Offered counts intended requests (open loop: ticks; closed loop:
	// equals Issued).
	Offered int64 `json:"offered"`
	// Issued counts requests actually sent.
	Issued int64 `json:"issued"`
	// Overruns counts open-loop ticks dropped because every conn was
	// busy and the backlog window was full — the generator itself
	// saturated; offered load beyond this point is nominal.
	Overruns  int64 `json:"overruns,omitempty"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	// Entries counts decoded entries across completed requests.
	Entries int64 `json:"entries"`
	// ElapsedMS is the measured wall clock of the run.
	ElapsedMS float64 `json:"elapsed_ms"`
	// RequestsPerSec and EntriesPerSec are completed throughput.
	RequestsPerSec float64 `json:"requests_per_sec"`
	EntriesPerSec  float64 `json:"entries_per_sec"`
	// Latency percentiles of completed requests, milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// fillLatency copies the histogram's standard percentile summary into
// the stats fields (latency math lives in stats.LatencyHist).
func (st *LoadStats) fillLatency(hist *stats.LatencyHist) {
	s := hist.Summary()
	st.P50MS = s.P50MS
	st.P95MS = s.P95MS
	st.P99MS = s.P99MS
	st.MaxMS = s.MaxMS
	st.MeanMS = s.MeanMS
}

// Pipelined-ingress geometry: completions are collected in chunks — an
// io_uring-CQ shape, one channel operation amortizing over pipeChunk
// tickets.
const pipeChunk = 32

// RunLoadPipelined drives svc through its asynchronous ingress API: one
// submitter goroutine issues Submit calls and the caller collects
// completions with Wait, chunked so channel traffic amortizes. This is
// the shape of a multiplexed wire protocol (many logical requests per
// connection) and is the load model cmd/bench -serve uses: unlike a
// goroutine-per-request closed loop, the generator itself pays no
// per-request park/wake, so the service's own dispatch costs dominate
// the measurement.
//
// Rate 0 runs closed-loop (the submitter keeps the window full); a
// positive Rate paces submissions and measures latency from each
// request's intended send time, so submitter-side backlog counts
// against the server. Requests cycle through reqs round-robin. Conns is
// ignored — the pipeline width is the window, not a goroutine count.
func RunLoadPipelined(ctx context.Context, svc *Service, scheme string, reqs [][]bitvec.V288, opts LoadOptions) LoadStats {
	opts.defaults()
	st := LoadStats{Closed: opts.Rate <= 0, OfferedRate: opts.Rate}
	var hist stats.LatencyHist

	type pend struct {
		tk Ticket
		t0 time.Time
	}
	// The window bounds how far the submitter runs ahead of the
	// collector, and its sizing is what makes each loop mode measure the
	// right thing. Closed loop: the window IS the load (a fixed
	// in-flight count, like a connection pool), so it sits well below
	// MaxQueue and admission control never fires — backpressure comes
	// from the client. Open loop: the offered rate must not be throttled
	// by the generator, so the window sits above MaxQueue; only
	// successfully admitted tickets occupy it (sheds never enter), which
	// caps occupancy near the server's own queue bound and leaves the
	// service's admission control as the binding constraint under
	// overload — exactly the behavior the overload points probe.
	chunks := min(32, max(1, svc.cfg.MaxQueue/(2*pipeChunk)))
	if !st.Closed {
		chunks = svc.cfg.MaxQueue/pipeChunk + 64
	}
	window := make(chan []pend, chunks)

	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()
	done := runCtx.Done()
	start := time.Now()

	var offered, issued, overruns, submitShed, submitErr int64
	go func() { // submitter
		defer close(window)
		chunk := make([]pend, 0, pipeChunk)
		var interval time.Duration
		next := start // open loop: intended send time of the next request
		if !st.Closed {
			interval = time.Duration(float64(time.Second) / opts.Rate)
			if interval <= 0 {
				interval = 1
			}
		}
		// How far behind its own schedule the generator may run before
		// it stops pretending: past this, latency-from-intended-time
		// would be measuring the generator's saturation, not the
		// server's queueing, so the schedule jumps forward and the
		// skipped sends are reported as Overruns instead.
		const maxSchedLag = 5 * time.Millisecond
		for i := 0; ; i++ {
			select {
			case <-done:
				if len(chunk) > 0 {
					window <- chunk
				}
				return
			default:
			}
			var t0 time.Time
			if st.Closed {
				t0 = time.Now()
			} else {
				// Intended-time pacing: sleep only when ahead of schedule;
				// after a sleep overshoot the loop bursts until the schedule
				// catches up, so the offered rate holds on average.
				if now := time.Now(); next.After(now) {
					time.Sleep(next.Sub(now))
				} else if lag := now.Sub(next); lag > maxSchedLag {
					skip := int64(lag / interval)
					overruns += skip
					offered += skip
					next = next.Add(time.Duration(skip) * interval)
				}
				t0 = next
				next = next.Add(interval)
			}
			offered++
			tk, err := svc.Submit(ctx, scheme, reqs[i%len(reqs)])
			issued++
			switch {
			case err == nil:
				chunk = append(chunk, pend{tk: tk, t0: t0})
				if len(chunk) == pipeChunk {
					window <- chunk
					chunk = make([]pend, 0, pipeChunk)
				}
			case IsShed(err):
				submitShed++
			default:
				submitErr++
			}
		}
	}()

	// Collect in the caller's goroutine. The submitter's ctx is the
	// caller's (not runCtx), so when the run ends, in-flight requests
	// drain normally rather than being poisoned by the cutoff.
	var completed, shed, errs, entries int64
	for chunk := range window {
		for _, p := range chunk {
			reply, err := p.tk.Wait(ctx)
			switch {
			case err == nil:
				completed++
				entries += int64(len(reply.Results))
				hist.Observe(time.Since(p.t0))
			case IsShed(err):
				shed++
			default:
				errs++
			}
		}
	}
	elapsed := time.Since(start)

	st.Offered = offered
	st.Issued = issued
	st.Overruns = overruns
	st.Completed = completed
	st.Shed = shed + submitShed
	st.Errors = errs + submitErr
	st.Entries = entries
	st.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if secs := elapsed.Seconds(); secs > 0 {
		st.RequestsPerSec = float64(st.Completed) / secs
		st.EntriesPerSec = float64(st.Entries) / secs
	}
	st.fillLatency(&hist)
	return st
}

// RunLoad drives do under opts and reports the aggregate stats. The run
// also stops early when ctx is cancelled.
func RunLoad(ctx context.Context, opts LoadOptions, do LoadFunc) LoadStats {
	opts.defaults()
	st := LoadStats{Closed: opts.Rate <= 0, OfferedRate: opts.Rate}
	var hist stats.LatencyHist
	var offered, issued, overruns, completed, shed, errs, entries atomic.Int64

	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()
	start := time.Now()

	issue := func(t0 time.Time) {
		outcome, n := do(runCtx)
		issued.Add(1)
		switch outcome {
		case LoadOK:
			completed.Add(1)
			entries.Add(int64(n))
			hist.Observe(time.Since(t0))
		case LoadShed:
			shed.Add(1)
		default:
			errs.Add(1)
		}
	}

	var wg sync.WaitGroup
	if st.Closed {
		for c := 0; c < opts.Conns; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					offered.Add(1)
					issue(time.Now())
				}
			}()
		}
	} else {
		// Ticks carry their intended send time; the backlog window is a
		// few requests per conn so a slow server shows up as latency
		// (and eventually overruns), not as silently reduced load.
		ticks := make(chan time.Time, 4*opts.Conns)
		for c := 0; c < opts.Conns; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t0 := range ticks {
					issue(t0)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(ticks)
			// A coarse 1ms metronome releases fractional ticks so rates
			// far above timer resolution still come out right.
			const step = time.Millisecond
			ticker := time.NewTicker(step)
			defer ticker.Stop()
			perStep := opts.Rate * step.Seconds()
			var due float64
			for {
				select {
				case <-runCtx.Done():
					return
				case now := <-ticker.C:
					due += perStep
					for ; due >= 1; due-- {
						offered.Add(1)
						select {
						case ticks <- now:
						default:
							overruns.Add(1)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st.Offered = offered.Load()
	st.Issued = issued.Load()
	st.Overruns = overruns.Load()
	st.Completed = completed.Load()
	st.Shed = shed.Load()
	st.Errors = errs.Load()
	st.Entries = entries.Load()
	st.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if secs := elapsed.Seconds(); secs > 0 {
		st.RequestsPerSec = float64(st.Completed) / secs
		st.EntriesPerSec = float64(st.Entries) / secs
	}
	st.fillLatency(&hist)
	return st
}
