package serve

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// The fuzz targets lock the /v1/decode codec's front door, mirroring the
// cluster protocol's discipline: no frame, however malformed, may panic
// the decoder; any frame that decodes must satisfy its own Validate
// invariants and survive a marshal/decode round trip. Run them as plain
// tests in CI (the corpus seeds double as regression cases) or with
// `go test -fuzz FuzzDecodeDecodeRequest ./internal/serve`.

func FuzzDecodeDecodeRequest(f *testing.F) {
	entry := strings.Repeat("0f", 36)
	good, _ := json.Marshal(DecodeRequest{Scheme: "DuetECC", Entries: []string{entry}})
	f.Add(good)
	f.Add([]byte(`{"scheme":"DuetECC","entries":["` + entry + `"]} trailing`))
	f.Add([]byte(`{"scheme":"DuetECC","entries":["` + entry + `"],"unknown":1}`))
	f.Add([]byte(`{"scheme":"","entries":["` + entry + `"]}`))
	f.Add([]byte(`{"scheme":"DuetECC","entries":[]}`))
	f.Add([]byte(`{"scheme":"DuetECC","entries":["short"]}`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeDecodeRequest(data)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("decoded frame fails its own validation: %v", err)
		}
		if _, err := r.ParseEntries(); err != nil {
			t.Fatalf("validated entries fail to parse: %v", err)
		}
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		r2, err := DecodeDecodeRequest(raw)
		if err != nil || !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip: %+v -> %+v (err %v)", r, r2, err)
		}
	})
}

func FuzzDecodeDecodeResponse(f *testing.F) {
	data := strings.Repeat("ab", 32)
	good, _ := json.Marshal(DecodeResponse{
		Scheme:       "DuetECC",
		BatchEntries: 3,
		Results: []EntryResult{
			{Status: StatusOK, Data: data},
			{Status: StatusCorrected, Data: data, CorrectedBits: 2},
			{Status: StatusDetected},
		},
	})
	f.Add(good)
	f.Add([]byte(`{"scheme":"DuetECC","results":[{"status":"detected","data":"` + data + `"}]}`))
	f.Add([]byte(`{"scheme":"DuetECC","results":[{"status":"ok","data":"zz"}]}`))
	f.Add([]byte(`{"scheme":"DuetECC","results":[{"status":"weird"}]}`))
	f.Add([]byte(`{"scheme":"DuetECC","results":[],"batch_entries":-1}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeDecodeResponse(data)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("decoded frame fails its own validation: %v", err)
		}
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		r2, err := DecodeDecodeResponse(raw)
		if err != nil || !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip: %+v -> %+v (err %v)", r, r2, err)
		}
	})
}

func FuzzDecodeSchemesResponse(f *testing.F) {
	good, _ := json.Marshal(SchemesResponse{
		Version: ProtocolVersion,
		Schemes: []SchemeStatus{{Name: "DuetECC", CorrectsPins: true}, {Name: "XED", Degraded: true, Faults: 9}},
	})
	f.Add(good)
	f.Add([]byte(`{"version":2,"schemes":[{"name":"DuetECC"}]}`))
	f.Add([]byte(`{"version":1,"schemes":[]}`))
	f.Add([]byte(`{"version":1,"schemes":[{"name":""}]}`))
	f.Add([]byte(`{"version":1,"schemes":[{"name":"x"}]} extra`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeSchemesResponse(data)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("decoded frame fails its own validation: %v", err)
		}
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		r2, err := DecodeSchemesResponse(raw)
		if err != nil || !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip: %+v -> %+v (err %v)", r, r2, err)
		}
	})
}
