// The /v1/decode wire protocol: single JSON documents, strict decoding
// (unknown fields and trailing garbage rejected, frames bounded before
// any attacker-proportional allocation), mirroring the discipline the
// cluster campaign protocol established and locked with fuzz targets.
//
//	POST /v1/decode  DecodeRequest -> DecodeResponse | ErrorResponse
//	GET  /v1/schemes                -> SchemesResponse
//	GET  /metrics                   -> Prometheus text (obs registry)
//	GET  /healthz                   -> liveness + degraded scheme list
//
// Entries travel as hex: 72 hex characters encode one 36-byte (288-bit)
// wire entry, most significant byte first within each beat-ordered
// byte; decoded payloads come back as 64 hex characters (32 bytes).

package serve

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/ecc"
)

// Wire-protocol bounds.
const (
	// ProtocolVersion is echoed by /v1/schemes; clients refuse to drive
	// a server speaking a different version.
	ProtocolVersion = 1
	// MaxFrame bounds any single request or response frame.
	MaxFrame = 1 << 20
	// MaxRequestEntries bounds the entries in one decode request.
	MaxRequestEntries = 512
	// MaxSchemeName bounds the scheme label length.
	MaxSchemeName = 64
	// entryHexLen is the hex length of one 36-byte wire entry.
	entryHexLen = 2 * bitvec.EntryBytes
	// dataHexLen is the hex length of one 32-byte payload.
	dataHexLen = 2 * bitvec.DataBytes
)

// Status strings used on the wire.
const (
	StatusOK        = "ok"
	StatusCorrected = "corrected"
	StatusDetected  = "detected"
)

// DecodeRequest is one decode call: a scheme label and 1..MaxRequestEntries
// received wire entries (a single-entry request is just a batch of one).
type DecodeRequest struct {
	// Scheme is a Table-2 row label resolvable by core.SchemeByName.
	Scheme string `json:"scheme"`
	// Entries are hex-encoded 36-byte received wire entries.
	Entries []string `json:"entries"`
}

// Validate checks wire bounds and hex shape (not scheme existence — the
// service answers that with its own error so /v1/schemes and /v1/decode
// stay consistent about what is served).
func (r *DecodeRequest) Validate() error {
	if r.Scheme == "" {
		return errors.New("serve: empty scheme")
	}
	if len(r.Scheme) > MaxSchemeName {
		return fmt.Errorf("serve: scheme label longer than %d bytes", MaxSchemeName)
	}
	if len(r.Entries) == 0 {
		return errors.New("serve: no entries")
	}
	if len(r.Entries) > MaxRequestEntries {
		return fmt.Errorf("serve: %d entries in one request (max %d)", len(r.Entries), MaxRequestEntries)
	}
	for i, e := range r.Entries {
		if len(e) != entryHexLen {
			return fmt.Errorf("serve: entry %d is %d hex chars, want %d", i, len(e), entryHexLen)
		}
		if !isHex(e) {
			return fmt.Errorf("serve: entry %d is not hex", i)
		}
	}
	return nil
}

// ParseEntries decodes the request's entries into wire vectors.
func (r *DecodeRequest) ParseEntries() ([]bitvec.V288, error) {
	out := make([]bitvec.V288, len(r.Entries))
	for i, e := range r.Entries {
		v, err := ParseEntry(e)
		if err != nil {
			return nil, fmt.Errorf("serve: entry %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// EntryResult is the decode outcome of one entry.
type EntryResult struct {
	// Status is "ok", "corrected", or "detected".
	Status string `json:"status"`
	// Data is the hex-encoded 32-byte decoded payload; omitted when the
	// entry was detected-uncorrectable (the payload is not trustworthy).
	Data string `json:"data,omitempty"`
	// CorrectedBits counts wire bits flipped by correction.
	CorrectedBits int `json:"corrected_bits,omitempty"`
}

// DecodeResponse answers a decode request, one result per entry in
// request order.
type DecodeResponse struct {
	Scheme string `json:"scheme"`
	// Degraded marks a detect-only answer from a degraded scheme.
	Degraded bool `json:"degraded,omitempty"`
	// BatchEntries is the size of the micro-batch that served this
	// request (observability aid; >= len(Results) under coalescing).
	BatchEntries int           `json:"batch_entries,omitempty"`
	Results      []EntryResult `json:"results"`
}

// Validate checks a decode response (client side) against wire bounds.
func (r *DecodeResponse) Validate() error {
	if r.Scheme == "" || len(r.Scheme) > MaxSchemeName {
		return errors.New("serve: response has invalid scheme label")
	}
	if len(r.Results) == 0 {
		return errors.New("serve: response has no results")
	}
	if len(r.Results) > MaxRequestEntries {
		return fmt.Errorf("serve: %d results in one response (max %d)", len(r.Results), MaxRequestEntries)
	}
	if r.BatchEntries < 0 {
		return errors.New("serve: negative batch size")
	}
	for i := range r.Results {
		res := &r.Results[i]
		switch res.Status {
		case StatusOK, StatusCorrected, StatusDetected:
		default:
			return fmt.Errorf("serve: result %d has status %q", i, res.Status)
		}
		if res.Status == StatusDetected {
			if res.Data != "" {
				return fmt.Errorf("serve: result %d is detected but carries data", i)
			}
		} else if len(res.Data) != dataHexLen || !isHex(res.Data) {
			return fmt.Errorf("serve: result %d data is not %d hex chars", i, dataHexLen)
		}
		if res.CorrectedBits < 0 || res.CorrectedBits > bitvec.EntryBits {
			return fmt.Errorf("serve: result %d corrected_bits %d out of range", i, res.CorrectedBits)
		}
	}
	return nil
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Shed marks a load-shedding 503: the request was healthy but the
	// server chose not to serve it; retry after RetryAfterMS.
	Shed         bool   `json:"shed,omitempty"`
	Reason       string `json:"reason,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// SchemesResponse lists the served schemes (GET /v1/schemes).
type SchemesResponse struct {
	Version int            `json:"version"`
	Schemes []SchemeStatus `json:"schemes"`
}

// Validate checks a schemes response (client side).
func (r *SchemesResponse) Validate() error {
	if r.Version != ProtocolVersion {
		return fmt.Errorf("serve: protocol version %d, want %d", r.Version, ProtocolVersion)
	}
	if len(r.Schemes) == 0 {
		return errors.New("serve: server lists no schemes")
	}
	for i := range r.Schemes {
		s := &r.Schemes[i]
		if s.Name == "" || len(s.Name) > MaxSchemeName {
			return fmt.Errorf("serve: scheme %d has invalid name", i)
		}
	}
	return nil
}

// FormatEntry hex-encodes one wire entry for the wire.
func FormatEntry(v bitvec.V288) string {
	var raw [bitvec.EntryBytes]byte
	for i := range raw {
		raw[i] = v.Byte(i)
	}
	return hex.EncodeToString(raw[:])
}

// ParseEntry decodes one hex wire entry.
func ParseEntry(s string) (bitvec.V288, error) {
	if len(s) != entryHexLen {
		return bitvec.V288{}, fmt.Errorf("entry is %d hex chars, want %d", len(s), entryHexLen)
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return bitvec.V288{}, err
	}
	var v bitvec.V288
	for i, b := range raw {
		v = v.SetByte(i, b)
	}
	return v, nil
}

// FormatData hex-encodes a decoded payload.
func FormatData(d [bitvec.DataBytes]byte) string { return hex.EncodeToString(d[:]) }

// EntryResultOf renders one core decode outcome onto the wire, using
// scheme to extract the payload from the corrected wire image.
func EntryResultOf(scheme core.Scheme, wr core.WireResult) EntryResult {
	switch wr.Status {
	case ecc.Detected:
		return EntryResult{Status: StatusDetected}
	case ecc.Corrected:
		return EntryResult{
			Status:        StatusCorrected,
			Data:          FormatData(scheme.ExtractData(wr.Wire)),
			CorrectedBits: wr.CorrectedBits,
		}
	default:
		return EntryResult{Status: StatusOK, Data: FormatData(scheme.ExtractData(wr.Wire))}
	}
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// decodeStrict unmarshals exactly one JSON document under the MaxFrame
// bound, rejecting unknown fields and trailing garbage — the shared
// front door for every frame, locked by the codec fuzz targets.
func decodeStrict(data []byte, v any) error {
	if len(data) > MaxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds %d", len(data), MaxFrame)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding frame: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("serve: trailing data after frame")
	}
	return nil
}

// DecodeDecodeRequest decodes and validates a decode request frame.
func DecodeDecodeRequest(data []byte) (DecodeRequest, error) {
	var r DecodeRequest
	if err := decodeStrict(data, &r); err != nil {
		return DecodeRequest{}, err
	}
	if err := r.Validate(); err != nil {
		return DecodeRequest{}, err
	}
	return r, nil
}

// DecodeDecodeResponse decodes and validates a decode response frame
// (client side).
func DecodeDecodeResponse(data []byte) (DecodeResponse, error) {
	var r DecodeResponse
	if err := decodeStrict(data, &r); err != nil {
		return DecodeResponse{}, err
	}
	if err := r.Validate(); err != nil {
		return DecodeResponse{}, err
	}
	return r, nil
}

// DecodeSchemesResponse decodes and validates a schemes response frame
// (client side).
func DecodeSchemesResponse(data []byte) (SchemesResponse, error) {
	var r SchemesResponse
	if err := decodeStrict(data, &r); err != nil {
		return SchemesResponse{}, err
	}
	if err := r.Validate(); err != nil {
		return SchemesResponse{}, err
	}
	return r, nil
}
