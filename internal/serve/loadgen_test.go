package serve

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/core"
)

func TestRunLoadClosedLoop(t *testing.T) {
	const perEntry = 2
	do := func(ctx context.Context) (LoadOutcome, int) {
		time.Sleep(200 * time.Microsecond)
		return LoadOK, perEntry
	}
	st := RunLoad(context.Background(), LoadOptions{Conns: 4, Duration: 300 * time.Millisecond}, do)
	if !st.Closed || st.OfferedRate != 0 {
		t.Errorf("closed-loop run reports %+v", st)
	}
	if st.Completed == 0 || st.Issued != st.Completed || st.Offered != st.Issued {
		t.Errorf("accounting: offered %d, issued %d, completed %d", st.Offered, st.Issued, st.Completed)
	}
	if st.Entries != perEntry*st.Completed {
		t.Errorf("entries %d, want %d", st.Entries, perEntry*st.Completed)
	}
	if st.RequestsPerSec <= 0 || st.EntriesPerSec <= 0 || st.ElapsedMS <= 0 {
		t.Errorf("rates: %+v", st)
	}
	if st.P50MS <= 0 || st.P50MS > st.P95MS || st.P95MS > st.P99MS || st.P99MS > 2*st.MaxMS {
		t.Errorf("percentiles out of order: p50 %.3f p95 %.3f p99 %.3f max %.3f",
			st.P50MS, st.P95MS, st.P99MS, st.MaxMS)
	}
}

func TestRunLoadOpenLoopOffersConfiguredRate(t *testing.T) {
	const rate = 2000.0
	do := func(ctx context.Context) (LoadOutcome, int) { return LoadOK, 1 }
	st := RunLoad(context.Background(), LoadOptions{Conns: 4, Duration: 400 * time.Millisecond, Rate: rate}, do)
	if st.Closed || st.OfferedRate != rate {
		t.Errorf("open-loop run reports %+v", st)
	}
	nominal := rate * 0.4
	// Generous bounds: a loaded CI box can stall the metronome, but the
	// offered count must track the configured rate, not the service rate.
	if float64(st.Offered) < nominal/4 || float64(st.Offered) > 2*nominal {
		t.Errorf("offered %d ticks for nominal %.0f", st.Offered, nominal)
	}
	if st.Issued+st.Overruns != st.Offered {
		t.Errorf("offered %d != issued %d + overruns %d", st.Offered, st.Issued, st.Overruns)
	}
}

func TestRunLoadOutcomeAccounting(t *testing.T) {
	var n atomic.Int64
	do := func(ctx context.Context) (LoadOutcome, int) {
		switch n.Add(1) % 3 {
		case 0:
			return LoadShed, 0
		case 1:
			return LoadError, 0
		default:
			return LoadOK, 1
		}
	}
	st := RunLoad(context.Background(), LoadOptions{Conns: 2, Duration: 100 * time.Millisecond}, do)
	if st.Completed+st.Shed+st.Errors != st.Issued {
		t.Errorf("outcomes %d+%d+%d != issued %d", st.Completed, st.Shed, st.Errors, st.Issued)
	}
	if st.Completed == 0 || st.Shed == 0 || st.Errors == 0 {
		t.Errorf("outcome classes not all exercised: %+v", st)
	}
}

func TestRunLoadHonorsCallerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	st := RunLoad(ctx, LoadOptions{Conns: 2, Duration: 10 * time.Second}, func(ctx context.Context) (LoadOutcome, int) {
		return LoadOK, 1
	})
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled run took %s", el)
	}
	_ = st
}

// singleEntryReqs slices a corpus into one-entry requests — the serving
// tier's common case and the pipelined runner's request unit.
func singleEntryReqs(s core.Scheme, n int, seed int64) [][]bitvec.V288 {
	flat := corpus(s, n, seed)
	reqs := make([][]bitvec.V288, n)
	for i := range reqs {
		reqs[i] = flat[i : i+1]
	}
	return reqs
}

func TestRunLoadPipelinedClosedLoop(t *testing.T) {
	s := core.NewDuetECC()
	svc, err := New(testConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	st := RunLoadPipelined(context.Background(), svc, s.Name(), singleEntryReqs(s, 8, 7),
		LoadOptions{Duration: 200 * time.Millisecond})
	if !st.Closed || st.OfferedRate != 0 {
		t.Errorf("closed-loop run reports %+v", st)
	}
	if st.Completed == 0 || st.Errors != 0 || st.Shed != 0 {
		t.Errorf("closed loop inside the window must complete everything: %+v", st)
	}
	if st.Offered != st.Issued || st.Completed+st.Shed+st.Errors != st.Issued {
		t.Errorf("accounting: offered %d issued %d completed %d shed %d errors %d",
			st.Offered, st.Issued, st.Completed, st.Shed, st.Errors)
	}
	if st.Entries != st.Completed {
		t.Errorf("entries %d, want %d (one per request)", st.Entries, st.Completed)
	}
	if st.P50MS <= 0 || st.P50MS > st.P99MS {
		t.Errorf("percentiles out of order: %+v", st)
	}
}

// sleepDecoder throttles every decode dispatch — a stand-in for an
// expensive engine so an open-loop run can overwhelm a tiny queue.
type sleepDecoder struct {
	bd    core.BatchDecoder
	delay time.Duration
}

func (d sleepDecoder) DecodeWireBatch(recv []bitvec.V288, out []core.WireResult) {
	time.Sleep(d.delay)
	d.bd.DecodeWireBatch(recv, out)
}

func TestRunLoadPipelinedOpenLoopShedsUnderOverload(t *testing.T) {
	s := core.NewDuetECC()
	cfg := testConfig(s)
	cfg.MaxBatch = 1
	cfg.MaxQueue = 8
	cfg.DecoderFor = func(sc core.Scheme) core.BatchDecoder {
		return sleepDecoder{bd: core.AsBatchDecoder(sc), delay: 200 * time.Microsecond}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Capacity is ~5k req/s; offer 10x that. Admission control (queue 8)
	// must shed the excess rather than let the backlog grow.
	st := RunLoadPipelined(context.Background(), svc, s.Name(), singleEntryReqs(s, 8, 7),
		LoadOptions{Duration: 300 * time.Millisecond, Rate: 50_000})
	if st.Closed {
		t.Errorf("open-loop run reports %+v", st)
	}
	if st.Completed == 0 || st.Shed == 0 {
		t.Errorf("overload must both serve and shed: %+v", st)
	}
	if st.Errors != 0 {
		t.Errorf("%d errors under clean overload", st.Errors)
	}
	if st.Issued+st.Overruns != st.Offered || st.Completed+st.Shed+st.Errors != st.Issued {
		t.Errorf("accounting: offered %d issued %d overruns %d completed %d shed %d errors %d",
			st.Offered, st.Issued, st.Overruns, st.Completed, st.Shed, st.Errors)
	}
}

// Latency histogram quantile behavior is tested in internal/stats
// (TestLatencyHistQuantiles), where the histogram now lives.
