package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hbm2ecc/internal/chaos/netchaos"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/httpx"
)

// TestChaosDecodeOverFaultyNetwork drives /v1/decode through a netchaos
// transport injecting drops, duplicate deliveries, and corrupted
// response frames. A simple retry loop on the client side — treating a
// strict-codec rejection of a mangled response the same as a transport
// failure — must converge every batch to exactly the direct-decode
// answer: decode is a pure function, so redelivery is harmless and
// corruption must never slip a wrong answer past DecodeDecodeResponse.
func TestChaosDecodeOverFaultyNetwork(t *testing.T) {
	s := core.NewDuetECC()
	svc, err := New(testConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpx.MaxBytes(svc.Handler(), MaxFrame))
	defer ts.Close()

	chaos := netchaos.New(netchaos.Plan{
		Seed:        17,
		DropProb:    0.2,
		DupProb:     0.2,
		CorruptProb: 0.2,
	}, nil)
	client := &http.Client{Transport: chaos, Timeout: 10 * time.Second}

	words := corpus(s, 16, 11)
	req := DecodeRequest{Scheme: s.Name()}
	for _, w := range words {
		req.Entries = append(req.Entries, FormatEntry(w))
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const batches = 12
	for b := 0; b < batches; b++ {
		var resp DecodeResponse
		for attempt := 0; ; attempt++ {
			if attempt > 50 {
				t.Fatalf("batch %d: no clean response after %d attempts", b, attempt)
			}
			if err := ctx.Err(); err != nil {
				t.Fatal(err)
			}
			hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/decode", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			hr.Header.Set("Content-Type", "application/json")
			res, err := client.Do(hr)
			if err != nil {
				continue // dropped — retry
			}
			raw := make([]byte, 0, MaxFrame)
			buf := bytes.NewBuffer(raw)
			_, err = buf.ReadFrom(res.Body)
			res.Body.Close()
			if err != nil || res.StatusCode != http.StatusOK {
				continue
			}
			resp, err = DecodeDecodeResponse(buf.Bytes())
			if err != nil {
				continue // corrupted frame rejected by the strict codec — retry
			}
			break
		}
		if len(resp.Results) != len(words) {
			t.Fatalf("batch %d: %d results, want %d", b, len(resp.Results), len(words))
		}
		for i, w := range words {
			want := EntryResultOf(s, s.DecodeWire(w))
			if resp.Results[i] != want {
				t.Fatalf("batch %d entry %d: got %+v, want %+v", b, i, resp.Results[i], want)
			}
		}
	}

	st := chaos.Stats()
	if st.Drops == 0 || st.Dups == 0 || st.Corrupts == 0 {
		t.Fatalf("chaos plan too quiet to prove anything: %+v", st)
	}
}
