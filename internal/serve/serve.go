// Package serve is the online decode tier: it turns the batch-decoder
// fast path (internal/core) into a live service that survives bursty
// traffic. Requests for a scheme land in a bounded per-scheme queue; a
// dynamic micro-batcher coalesces them — flushing on max_batch entries
// or max_wait, whichever comes first — and drains them through
// core.AsBatchDecoder, so concurrent single-entry requests are decoded
// at amortized batch cost instead of paying a worker wakeup and a
// dynamic dispatch each.
//
// The tier is built to shed rather than collapse:
//
//   - admission control bounds the queue in entries; past the budget a
//     request is rejected immediately with a Retry-After hint instead of
//     queueing unboundedly (HTTP surfaces map this to 503);
//   - every request carries a deadline; requests that expire while
//     queued are answered with a shed error, so accepted requests keep
//     their latency bound even under overload;
//   - a cancelled request context (client disconnect) releases the
//     request without decoding it;
//   - a scheme whose decoder faults repeatedly is degraded to
//     detect-only by a resilience.DegradeGuard — its requests still get
//     answers (status detected, data withheld) instead of the fault
//     taking the whole server down.
//
// Every request is guaranteed exactly one terminal outcome — a decoded
// reply, a shed, or a cancellation — including across a mid-flight
// Close; the delivery path panics on a double send by construction.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/ecc"
	"hbm2ecc/internal/obs"
	"hbm2ecc/internal/resilience"
)

// Config parametrizes a Service. The zero value selects production
// defaults for every field.
type Config struct {
	// Schemes is the served corpus (default core.Table2Schemes()).
	Schemes []core.Scheme
	// MaxBatch is the micro-batcher's flush threshold in entries
	// (default 256, the chunk size the Monte-Carlo evaluator uses).
	// MaxBatch 1 disables coalescing: every request is decoded alone
	// with the single-shot decoder — the "single-request-per-decode"
	// baseline cmd/bench -serve compares against.
	MaxBatch int
	// MaxWait is how long the batcher holds an underfull batch open for
	// more arrivals before flushing (default 200µs).
	MaxWait time.Duration
	// MaxQueue bounds each scheme's queue in entries; admission control
	// sheds past it (default 4096).
	MaxQueue int
	// Workers is the number of decode workers per scheme (default 1 —
	// one batcher goroutine per scheme keeps its tables hot; raise it
	// when schemes are few and cores are many).
	Workers int
	// Deadline is the default per-request deadline measured from
	// admission (default 50ms). A tighter request context wins.
	Deadline time.Duration
	// RetryAfter is the backoff hint attached to shed responses
	// (default 100ms).
	RetryAfter time.Duration
	// DegradeBudget is the number of recovered decoder faults a scheme
	// tolerates before it is degraded to detect-only (default 8).
	DegradeBudget int
	// Registry receives the serve_* metrics (default obs.Default).
	Registry *obs.Registry

	// DecoderFor overrides the batch-decoder construction (default
	// core.AsBatchDecoder). Tests use it for fault injection and
	// slow-decoder scheduling; cmd/bench -serve uses it to model a
	// hardware ECC engine's per-dispatch transaction cost.
	DecoderFor func(core.Scheme) core.BatchDecoder
}

func (c *Config) defaults() {
	if len(c.Schemes) == 0 {
		c.Schemes = core.Table2Schemes()
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 200 * time.Microsecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4096
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = 50 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 100 * time.Millisecond
	}
	if c.DegradeBudget <= 0 {
		c.DegradeBudget = 8
	}
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	if c.DecoderFor == nil {
		c.DecoderFor = core.AsBatchDecoder
	}
}

// ErrShutdown is returned for requests that arrive after Close, and
// delivered to requests still queued when Close drains them.
var ErrShutdown = errors.New("serve: service shutting down")

// OverloadError is a shed: the request was rejected (admission control)
// or expired in queue (deadline), and the client should back off for
// RetryAfter before retrying. HTTP surfaces map it to 503 + Retry-After.
type OverloadError struct {
	// Reason is "queue" (admission control) or "deadline" (expired
	// before a worker reached it).
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// IsShed reports whether err is a load-shedding outcome.
func IsShed(err error) bool {
	var oe *OverloadError
	return errors.As(err, &oe)
}

// Reply is a successfully served request.
type Reply struct {
	// Results holds one decode outcome per submitted entry, in order.
	Results []core.WireResult
	// Degraded marks a detect-only answer from a degraded scheme: every
	// result is Detected and no correction was attempted.
	Degraded bool
	// BatchEntries is the total entry count of the decode call that
	// served this request (>= len(Results) when micro-batching
	// coalesced it with neighbours) — an observability aid.
	BatchEntries int
}

// reply is the single terminal outcome delivered to a span.
type reply struct {
	res      []core.WireResult
	degraded bool
	batch    int
	err      error
}

// span is one in-flight request: the unit the queue and batcher move.
type span struct {
	ctx       context.Context
	entries   []bitvec.V288
	start     time.Time
	deadline  time.Time
	done      chan reply
	delivered atomic.Bool
}

// deliver sends sp's unique terminal outcome. A second delivery is a
// bug in the batcher's state machine and panics loudly rather than
// corrupting a response.
func (sp *span) deliver(r reply) {
	if !sp.delivered.CompareAndSwap(false, true) {
		panic("serve: double delivery to one request")
	}
	sp.done <- r // cap 1: never blocks
}

// spanPool recycles spans (and their reply channels) between requests.
// A span may be pooled only once its delivery has been consumed: the
// waiter that received on sp.done is the last reference holder, so the
// channel is empty and no worker can touch the span again. Spans
// abandoned by a cancelled waiter are never pooled — the in-flight
// delivery still owns them — and fall to the garbage collector.
var spanPool = sync.Pool{
	New: func() any {
		return &span{done: make(chan reply, 1)}
	},
}

// schemeServer is one scheme's queue, decoder, and degrade state.
type schemeServer struct {
	name   string
	scheme core.Scheme
	bd     core.BatchDecoder
	queue  chan *span
	queued atomic.Int64 // entries admitted and not yet dequeued

	guardMu  sync.Mutex
	guard    *resilience.DegradeGuard
	degraded atomic.Bool

	mQueue    *obs.Gauge
	mDegGauge *obs.Gauge
	mBatch    *obs.Histogram
	mEntries  *obs.Counter
	mFaults   *obs.Counter
	mLatency  *obs.Histogram
	mOK       *obs.Counter
	mShedQ    *obs.Counter
	mShedD    *obs.Counter
	mCancel   *obs.Counter
	mClose    *obs.Counter
}

// Service is the online decode engine. Construct with New, serve with
// Decode (or the HTTP surface from Handler), stop with Close.
type Service struct {
	cfg     Config
	names   []string
	schemes map[string]*schemeServer

	admit  sync.RWMutex // read-held across enqueue; write-held to close
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	start time.Time
}

// batchBuckets sizes the batch-entries histogram (powers of two through
// the largest coalesced batch).
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// latencyBuckets spans 10µs..1s, the range between a warm in-process
// decode and a hopeless overload.
var latencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

// New builds and starts a Service: per-scheme queues and micro-batcher
// workers are running when it returns.
func New(cfg Config) (*Service, error) {
	cfg.defaults()
	s := &Service{
		cfg:     cfg,
		schemes: make(map[string]*schemeServer, len(cfg.Schemes)),
		stop:    make(chan struct{}),
		start:   time.Now(),
	}
	reg := cfg.Registry
	mQueue := reg.Gauge("serve_queue_entries", "Entries admitted and waiting for a decode worker.", "scheme")
	mBatch := reg.Histogram("serve_batch_entries", "Entries per micro-batched decode call.", batchBuckets, "scheme")
	mEntries := reg.Counter("serve_entries_decoded_total", "Entries decoded by the serving tier.", "scheme")
	mFaults := reg.Counter("serve_decode_faults_total", "Recovered decoder faults (panics) per scheme.", "scheme")
	mLatency := reg.Histogram("serve_request_latency_seconds", "Admission-to-reply latency of completed requests.", latencyBuckets, "scheme")
	mReq := reg.Counter("serve_requests_total", "Requests by terminal outcome.", "scheme", "outcome")
	mShed := reg.Counter("serve_shed_total", "Requests shed instead of served.", "scheme", "reason")
	mDegraded := reg.Gauge("serve_degraded", "1 when the scheme is degraded to detect-only.", "scheme")
	for _, sc := range cfg.Schemes {
		name := sc.Name()
		if _, dup := s.schemes[name]; dup {
			return nil, fmt.Errorf("serve: duplicate scheme %q", name)
		}
		ss := &schemeServer{
			name:   name,
			scheme: sc,
			bd:     cfg.DecoderFor(sc),
			queue:  make(chan *span, cfg.MaxQueue),
			guard:  resilience.NewDegradeGuard(cfg.DegradeBudget),

			mQueue:    mQueue.With(name),
			mDegGauge: mDegraded.With(name),
			mBatch:    mBatch.With(name),
			mEntries:  mEntries.With(name),
			mFaults:   mFaults.With(name),
			mLatency:  mLatency.With(name),
			mOK:       mReq.With(name, "ok"),
			mShedQ:    mShed.With(name, "queue"),
			mShedD:    mShed.With(name, "deadline"),
			mCancel:   mReq.With(name, "canceled"),
			mClose:    mReq.With(name, "shutdown"),
		}
		ss.mDegGauge.Set(0)
		s.schemes[name] = ss
		s.names = append(s.names, name)
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker(ss)
		}
	}
	return s, nil
}

// Names returns the served scheme names in construction order.
func (s *Service) Names() []string { return append([]string(nil), s.names...) }

// SchemeStatus is one scheme's serving state.
type SchemeStatus struct {
	Name string `json:"name"`
	// Degraded means the scheme answers detect-only.
	Degraded bool `json:"degraded"`
	// Faults is the number of recovered decoder faults.
	Faults uint64 `json:"faults"`
	// CorrectsPins mirrors the scheme's organization property.
	CorrectsPins bool `json:"corrects_pins"`
	// QueuedEntries is the current queue depth in entries.
	QueuedEntries int64 `json:"queued_entries"`
}

// Status returns the per-scheme serving state in construction order.
func (s *Service) Status() []SchemeStatus {
	out := make([]SchemeStatus, 0, len(s.names))
	for _, name := range s.names {
		ss := s.schemes[name]
		out = append(out, SchemeStatus{
			Name:          name,
			Degraded:      ss.degraded.Load(),
			Faults:        ss.mFaults.Value(),
			CorrectsPins:  ss.scheme.CorrectsPins(),
			QueuedEntries: ss.queued.Load(),
		})
	}
	return out
}

// Decode serves one request: entries are admitted into scheme's queue,
// micro-batched, decoded, and the results returned in order. The error
// is nil (decoded reply, possibly degraded), an *OverloadError (shed:
// back off RetryAfter), ErrShutdown, ctx.Err() (caller cancelled), or a
// plain error for malformed calls (unknown scheme, no entries).
func (s *Service) Decode(ctx context.Context, scheme string, entries []bitvec.V288) (Reply, error) {
	ss, sp, err := s.submit(ctx, scheme, entries)
	if err != nil {
		return Reply{}, err
	}
	return wait(ctx, ss, sp)
}

// Ticket is a pending request handed back by Submit: the asynchronous
// half of Decode. A pipelined client keeps a window of tickets in
// flight — submitting new requests while earlier ones are still being
// micro-batched — instead of parking a goroutine per request. Wait must
// be called exactly once per ticket.
type Ticket struct {
	ss *schemeServer
	sp *span
}

// Submit admits one request into scheme's queue and returns without
// waiting for the decode. The error cases are the admission-time subset
// of Decode's: *OverloadError (queue full), ErrShutdown, ctx already
// cancelled, or a malformed call. Redeem the ticket with Wait.
func (s *Service) Submit(ctx context.Context, scheme string, entries []bitvec.V288) (Ticket, error) {
	ss, sp, err := s.submit(ctx, scheme, entries)
	if err != nil {
		return Ticket{}, err
	}
	return Ticket{ss: ss, sp: sp}, nil
}

// Wait blocks until the submitted request's terminal outcome and
// returns it, exactly like the tail of Decode. ctx bounds the wait;
// pass the Submit context (or one derived from it) so the batcher's
// cancel-on-disconnect view agrees with the waiter's.
func (tk Ticket) Wait(ctx context.Context) (Reply, error) {
	return wait(ctx, tk.ss, tk.sp)
}

// submit validates, stamps, and admits one request; the returned span
// is queued and owes the caller exactly one delivery on sp.done.
func (s *Service) submit(ctx context.Context, scheme string, entries []bitvec.V288) (*schemeServer, *span, error) {
	ss, ok := s.schemes[scheme]
	if !ok {
		return nil, nil, fmt.Errorf("serve: unknown scheme %q", scheme)
	}
	if len(entries) == 0 {
		return nil, nil, errors.New("serve: empty request")
	}
	if len(entries) > MaxRequestEntries {
		return nil, nil, fmt.Errorf("serve: %d entries in one request (max %d)", len(entries), MaxRequestEntries)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	start := time.Now()
	deadline := start.Add(s.cfg.Deadline)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	sp := spanPool.Get().(*span)
	sp.ctx = ctx
	sp.entries = entries
	sp.start = start
	sp.deadline = deadline
	sp.delivered.Store(false)

	// Admission: the read lock makes enqueue atomic with respect to
	// Close's drain; the entry counter is the shedding budget.
	s.admit.RLock()
	if s.closed {
		s.admit.RUnlock()
		return nil, nil, ErrShutdown
	}
	n := int64(len(entries))
	if q := ss.queued.Add(n); q > int64(s.cfg.MaxQueue) {
		ss.queued.Add(-n)
		s.admit.RUnlock()
		ss.mShedQ.Inc()
		return nil, nil, &OverloadError{Reason: "queue", RetryAfter: s.cfg.RetryAfter}
	}
	ss.mQueue.Set(float64(ss.queued.Load()))
	select {
	case ss.queue <- sp:
	default:
		// Unreachable while the channel capacity matches MaxQueue
		// (every span holds >= 1 entry), kept as defense in depth.
		ss.queued.Add(-n)
		s.admit.RUnlock()
		ss.mShedQ.Inc()
		return nil, nil, &OverloadError{Reason: "queue", RetryAfter: s.cfg.RetryAfter}
	}
	s.admit.RUnlock()
	return ss, sp, nil
}

// wait is the delivery half of Decode: one terminal outcome per span.
func wait(ctx context.Context, ss *schemeServer, sp *span) (Reply, error) {
	if ctx.Done() == nil {
		// No cancellation to watch (context.Background and friends): a
		// plain receive skips the select machinery on the hottest path.
		r := <-sp.done
		return finish(ss, sp, r)
	}
	select {
	case r := <-sp.done:
		return finish(ss, sp, r)
	case <-ctx.Done():
		// The span stays queued; a worker (or the Close drain) will
		// observe the cancelled context and release it without
		// decoding. The buffered done channel keeps that send from
		// blocking or leaking.
		ss.mCancel.Inc()
		return Reply{}, ctx.Err()
	}
}

func finish(ss *schemeServer, sp *span, r reply) (Reply, error) {
	start := sp.start
	sp.ctx, sp.entries = nil, nil // drop references before pooling
	spanPool.Put(sp)
	if r.err != nil {
		return Reply{}, r.err
	}
	ss.mLatency.Observe(time.Since(start).Seconds())
	return Reply{Results: r.res, Degraded: r.degraded, BatchEntries: r.batch}, nil
}

// worker is one micro-batcher loop: take a first span, hold the batch
// open until MaxBatch entries or MaxWait elapse, then decode the batch
// and deliver each span's slice of the results.
func (s *Service) worker(ss *schemeServer) {
	defer s.wg.Done()
	maxBatch := s.cfg.MaxBatch
	spans := make([]*span, 0, 64)
	buf := make([]bitvec.V288, 0, maxBatch+MaxRequestEntries)
	out := make([]core.WireResult, maxBatch+MaxRequestEntries)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var sp *span
		select {
		case sp = <-ss.queue:
			// Hot-queue fast path: skip the full select when work is
			// already waiting.
		default:
			select {
			case <-s.stop:
				return
			case sp = <-ss.queue:
			}
		}
		spans = append(spans[:0], sp)
		n := len(sp.entries)
		if maxBatch > 1 {
			// First drain whatever is already queued — non-blocking
			// receives, no timer arming, no scheduler round trips. Only
			// an underfull batch with an empty queue holds the batch
			// open for MaxWait.
		drain:
			for n < maxBatch {
				select {
				case sp2 := <-ss.queue:
					spans = append(spans, sp2)
					n += len(sp2.entries)
				default:
					break drain
				}
			}
			if n < maxBatch {
				timer.Reset(s.cfg.MaxWait)
			collect:
				for n < maxBatch {
					select {
					case sp2 := <-ss.queue:
						spans = append(spans, sp2)
						n += len(sp2.entries)
					case <-timer.C:
						break collect
					case <-s.stop:
						break collect
					}
				}
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
			}
		}
		s.serveBatch(ss, spans, buf[:0], out)
	}
}

// serveBatch resolves one collected batch: released cancelled and
// expired spans, decodes the rest in a single batch call, and delivers
// every span exactly one outcome.
func (s *Service) serveBatch(ss *schemeServer, spans []*span, buf []bitvec.V288, out []core.WireResult) {
	now := time.Now()
	live := spans[:0]
	for _, sp := range spans {
		ss.queued.Add(-int64(len(sp.entries)))
		switch {
		case sp.ctx.Err() != nil:
			sp.deliver(reply{err: sp.ctx.Err()})
		case now.After(sp.deadline):
			ss.mShedD.Inc()
			sp.deliver(reply{err: &OverloadError{Reason: "deadline", RetryAfter: s.cfg.RetryAfter}})
		default:
			live = append(live, sp)
		}
	}
	ss.mQueue.Set(float64(ss.queued.Load()))
	if len(live) == 0 {
		return
	}

	if ss.degraded.Load() {
		for _, sp := range live {
			sp.deliver(reply{res: detectOnly(sp.entries), degraded: true, batch: len(sp.entries)})
		}
		return
	}

	for _, sp := range live {
		buf = append(buf, sp.entries...)
	}
	total := len(buf)
	ss.mBatch.Observe(float64(total))
	if !s.decodeBatch(ss, buf, out[:total]) {
		// The batch decoder faulted; isolate the poison entries by
		// decoding per entry with the single-shot decoder, answering
		// detect-only for entries that fault individually.
		for i, e := range buf {
			out[i] = s.decodeOne(ss, e)
		}
	}
	degraded := ss.degraded.Load() // faults above may have tripped the guard
	// One backing array serves the whole batch: every span gets a
	// full-capacity sub-slice (no append can bleed into a neighbour),
	// so the allocation is amortized across the coalesced requests.
	resAll := make([]core.WireResult, total)
	copy(resAll, out[:total])
	off := 0
	for _, sp := range live {
		end := off + len(sp.entries)
		res := resAll[off:end:end]
		off = end
		if degraded {
			// Tripped mid-batch: stay consistent with the scheme's new
			// detect-only contract rather than leaking a last
			// corrected answer.
			res = detectOnly(sp.entries)
		}
		ss.mEntries.Add(uint64(len(sp.entries)))
		ss.mOK.Inc()
		sp.deliver(reply{res: res, degraded: degraded, batch: total})
	}
}

// decodeBatch runs one batch decode call, converting a decoder panic
// into a recorded fault. It reports whether the batch succeeded.
func (s *Service) decodeBatch(ss *schemeServer, buf []bitvec.V288, out []core.WireResult) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			s.recordFault(ss)
			ok = false
		}
	}()
	ss.bd.DecodeWireBatch(buf, out)
	return true
}

// decodeOne decodes a single entry with the scheme's single-shot
// decoder, answering detect-only if it faults.
func (s *Service) decodeOne(ss *schemeServer, e bitvec.V288) (wr core.WireResult) {
	defer func() {
		if r := recover(); r != nil {
			s.recordFault(ss)
			wr = core.WireResult{Wire: e, Status: ecc.Detected}
		}
	}()
	return ss.scheme.DecodeWire(e)
}

// recordFault counts one recovered decoder fault against the scheme's
// degrade budget, flipping it to detect-only when the budget runs out.
func (s *Service) recordFault(ss *schemeServer) {
	ss.mFaults.Inc()
	ss.guardMu.Lock()
	tripped := ss.guard.RecordDUE()
	ss.guardMu.Unlock()
	if tripped {
		ss.degraded.Store(true)
		ss.mDegGauge.Set(1)
	}
}

// detectOnly is the degraded answer: every entry reported detected,
// wire image returned unmodified, no correction claimed.
func detectOnly(entries []bitvec.V288) []core.WireResult {
	res := make([]core.WireResult, len(entries))
	for i, e := range entries {
		res[i] = core.WireResult{Wire: e, Status: ecc.Detected}
	}
	return res
}

// Close stops the service: new requests get ErrShutdown, workers finish
// the batches they hold (delivering their replies), and every span
// still queued is drained with ErrShutdown. Safe to call more than
// once; returns after every in-flight request has its outcome.
func (s *Service) Close() {
	s.once.Do(func() {
		s.admit.Lock()
		s.closed = true
		s.admit.Unlock()
		close(s.stop)
		s.wg.Wait()
		for _, name := range s.names {
			ss := s.schemes[name]
			for drained := false; !drained; {
				select {
				case sp := <-ss.queue:
					ss.queued.Add(-int64(len(sp.entries)))
					ss.mClose.Inc()
					sp.deliver(reply{err: ErrShutdown})
				default:
					drained = true
				}
			}
			ss.mQueue.Set(float64(ss.queued.Load()))
		}
	})
}
