package serve

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hbm2ecc/internal/core"
)

// TestShutdownHammer drives the micro-batcher with concurrent clients
// whose contexts cancel at random, closes the service mid-flight, and
// asserts the exactly-one-terminal-outcome invariant: every request
// returns exactly once, classified as a response, a shed, a
// cancellation, or a shutdown — nothing hangs, nothing double-delivers
// (span.deliver panics on a double send by construction), and the
// worker goroutines are all gone afterwards. Deterministic inputs
// (seeded RNG, fixed counts); run it under -race.
func TestShutdownHammer(t *testing.T) {
	const (
		goroutines = 16
		perG       = 150
	)
	s := core.NewDuetECC()
	cfg := testConfig(s, core.NewTrioECC())
	cfg.Workers = 2
	cfg.MaxBatch = 8
	cfg.MaxWait = 100 * time.Microsecond
	cfg.MaxQueue = 64 // small enough that the hammer sheds too
	cfg.Deadline = 20 * time.Millisecond
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	names := svc.Names()
	words := corpus(s, 64, 23)

	var started, finished atomic.Int64
	var ok, shed, canceled, shutdown atomic.Int64
	release := make(chan struct{}) // closed when half the requests have started

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				if started.Add(1) == goroutines*perG/2 {
					close(release)
				}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(4) {
				case 0: // cancels almost immediately
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				case 1: // already cancelled
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				}
				n := 1 + rng.Intn(4)
				_, err := svc.Decode(ctx, names[rng.Intn(len(names))], words[:n])
				cancel()
				finished.Add(1)
				switch {
				case err == nil:
					ok.Add(1)
				case IsShed(err):
					shed.Add(1)
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					canceled.Add(1)
				case errors.Is(err, ErrShutdown):
					shutdown.Add(1)
				default:
					t.Errorf("unexpected terminal outcome: %v", err)
				}
			}
		}(g)
	}

	<-release
	svc.Close() // mid-flight: in-flight spans must still resolve
	wg.Wait()

	total := ok.Load() + shed.Load() + canceled.Load() + shutdown.Load()
	if total != goroutines*perG || finished.Load() != goroutines*perG {
		t.Fatalf("outcomes %d (ok %d, shed %d, canceled %d, shutdown %d) != requests %d",
			total, ok.Load(), shed.Load(), canceled.Load(), shutdown.Load(), goroutines*perG)
	}
	if shutdown.Load() == 0 {
		t.Error("mid-flight Close produced no shutdown outcomes (hammer not actually mid-flight)")
	}
	if ok.Load() == 0 {
		t.Error("no request completed before Close")
	}

	// Workers and drains are done; allow the runtime a moment to retire
	// the exiting goroutines, then check for leaks.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before hammer, %d after close", before, after)
	}
}
