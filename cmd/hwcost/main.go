// Command hwcost prints the Table 3 hardware cost estimates from the
// structural gate model.
package main

import (
	"fmt"

	"hbm2ecc/internal/hwmodel"
	"hbm2ecc/internal/textplot"
)

func main() {
	base := hwmodel.Baseline()
	t := textplot.NewTable("scheme", "variant", "enc AND2", "enc +%", "enc ns", "dec AND2", "dec +%", "dec ns")
	for _, r := range hwmodel.All() {
		ea, _ := r.Encoder.Overhead(base.Encoder)
		da, _ := r.Decoder.Overhead(base.Decoder)
		t.AddRow(r.Name, r.Variant.String(),
			r.Encoder.AreaAND2, fmt.Sprintf("%+.1f%%", ea*100), r.Encoder.DelayNS,
			r.Decoder.AreaAND2, fmt.Sprintf("%+.1f%%", da*100), r.Decoder.DelayNS)
	}
	fmt.Println("Table 3: hardware overheads")
	fmt.Println("(baseline calibrated to the paper's synthesis: 1176 AND2/0.09ns encode, 2467 AND2/0.20ns decode)")
	fmt.Println(t)
	fmt.Printf("DSC / SSC-TSD alternatives need >= %d cycles of iterative decoding and are rejected (§6.2);\n",
		hwmodel.IterativeDecoderCycles)
	fmt.Println("every decoder above fits in a sub-0.66ns GPU cycle.")
	fmt.Println()
	fmt.Println("TrioECC decoder block breakdown (Fig. 7b structure, Eff. point):")
	for _, p := range hwmodel.DecoderBreakdown() {
		fmt.Printf("  %-40s %5d AND2\n", p.Name, p.AreaAND2)
	}
}
