// Command trends prints Fig. 1: the historical DRAM soft-error-rate and
// capacity regressions with the measured HBM2 overlay.
package main

import (
	"flag"
	"fmt"
	"log"

	"hbm2ecc/internal/experiments"
	"hbm2ecc/internal/textplot"
	"hbm2ecc/internal/trends"
)

func main() {
	seed := flag.Int64("seed", 2021, "random seed")
	runs := flag.Int("runs", 150, "campaign runs used to measure the HBM2 point")
	flag.Parse()

	an := experiments.Campaign(experiments.CampaignConfig{Seed: *seed, Runs: *runs})
	// The campaign runs at an accelerated in-simulation event rate; the
	// physical beamline MTTE (~30s, the default beam.Config rate) sets
	// the absolute scale of the overlay, while the campaign supplies the
	// measured multi-bit share.
	res, err := trends.Compute(30, an.MultiBitFraction().P, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fig. 1: historical neutron-beam DRAM SER vs capacity, with HBM2 overlay")
	t := textplot.NewTable("generation", "year", "SER FIT/chip", "capacity Mb")
	for _, p := range res.Points {
		t.AddRow(p.Generation, p.Year, p.SERPerChip, p.CapacityMb)
	}
	fmt.Println(t)
	fmt.Printf("SER regression:      %.1f × e^(%.3f·gen), R²=%.3f (halves every %.1f generations)\n",
		res.SERFit.A, res.SERFit.B, res.SERFit.R2, res.SERFit.HalvingInterval())
	fmt.Printf("capacity regression: %.1f × e^(%.3f·gen), R²=%.3f (doubles every %.1f generations)\n",
		res.CapFit.A, res.CapFit.B, res.CapFit.R2, res.CapFit.HalvingInterval())
	fmt.Printf("HBM2 (measured):     %.1f FIT/chip overall, %.1f FIT/chip multi-bit\n",
		res.HBM2SER, res.HBM2MultiBitSER)
	fmt.Printf("non-bitcell band:    %v FIT/chip (Borucki)\n", trends.NonBitcellBand)
	if res.SERFallsFasterThanCapacityGrows() {
		fmt.Println("=> per-chip SER falls while capacity grows, and the HBM2 point continues the trend.")
	}
}
