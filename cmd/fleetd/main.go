// Command fleetd is the fleet health control plane: the coordinator
// side of the gpud-style split in internal/fleet, fed by simulated
// node agents from internal/fieldsim. It ingests Xid-style event
// reports over the wire protocol, tracks liveness through
// simulated-time leases, ranks nodes by predicted failure, and issues
// drain/retire commands — then reports the policy-quality ledger (SDCs
// avoided vs capacity lost) the simulation ground truth enables.
//
//	fleetd -addr 127.0.0.1:8455 -nodes 1000 -hours 720 -accel 10000
//	fleetd -once -nodes 200 -hours 240   # run the sim, print quality, exit
//
// Endpoints:
//
//	POST /v1/report       — node agent report ingest
//	GET  /v1/fleet        — ranked nodes + status counts (?top=N)
//	GET  /v1/fleet/events — recent events (?node=&xid=&limit=)
//	GET  /metrics         — Prometheus text (fleet_* families)
//	GET  /healthz         — liveness + fleet counts
//
// The embedded simulation drives the coordinator over real loopback
// HTTP through fleet.Client — the same frames, validation, and
// error paths a remote agent would exercise. With -nodes 0 fleetd
// serves an empty coordinator for external agents instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hbm2ecc/internal/core"
	"hbm2ecc/internal/fieldsim"
	"hbm2ecc/internal/fleet"
	"hbm2ecc/internal/httpx"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8455", "HTTP listen address (host:0 picks a free port, printed on startup)")
	nodes := flag.Int("nodes", 1000, "simulated fleet size (0 serves an empty coordinator for external agents)")
	hours := flag.Float64("hours", 720, "simulated deployment, hours")
	accel := flag.Float64("accel", 10_000, "soft-error acceleration factor (crash rate is never accelerated)")
	schemeName := flag.String("scheme", "NI:SEC-DED", "per-node ECC scheme (core.SchemeByName label)")
	seed := flag.Int64("seed", 2021, "simulation seed")
	dueBudget := flag.Int("due-budget", 32, "agent DUE budget per rolling window before it recommends draining")
	lease := flag.Float64("lease", 12, "coordinator liveness lease, simulated hours")
	once := flag.Bool("once", false, "run the simulation, print the result JSON, exit")
	stateDir := flag.String("state-dir", "", "durable state directory (snapshot + WAL); empty keeps the coordinator memory-only")
	flag.Parse()

	scheme, err := core.SchemeByName(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}

	opts := fleet.CoordinatorOptions{
		LeaseHours: *lease,
		MaxNodes:   *nodes + 1024,
		StateDir:   *stateDir,
	}
	var coord *fleet.Coordinator
	if *stateDir != "" {
		coord, err = fleet.OpenCoordinator(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetd:", err)
			os.Exit(1)
		}
		rec := coord.Recovery()
		log.Printf("fleetd: durable state in %s: recovered %d nodes from snapshot, replayed %d/%d WAL records (sim clock %.1fh)",
			*stateDir, rec.SnapshotNodes, rec.WALApplied, rec.WALRecords, rec.SimHours)
	} else {
		coord = fleet.NewCoordinator(opts)
	}

	ctx, stop := httpx.SignalContext()
	defer stop()

	d, err := httpx.StartDaemon(ctx, "fleetd", *addr, coord.Handler(), fleet.MaxFrame)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
	log.Printf("fleetd: coordinator for %d simulated nodes on %s (scheme=%s hours=%.0f accel=%.0fx)",
		*nodes, d.URL(), scheme.Name(), *hours, *accel)

	simDone := make(chan struct{})
	var res fieldsim.FleetResult
	var simErr error
	go func() {
		defer close(simDone)
		if *nodes <= 0 {
			return
		}
		cfg := fieldsim.FleetConfig{
			Scheme: scheme,
			Nodes:  *nodes,
			Hours:  *hours,
			Accel:  *accel,
			Seed:   *seed,
		}
		cfg.Agent.DUEBudget = *dueBudget
		// Agents report over real loopback HTTP: every frame crosses the
		// wire codec both ways.
		client := fleet.NewClient(d.URL(), 30*time.Second)
		res, simErr = fieldsim.RunFleet(ctx, cfg, client)
		if simErr != nil {
			if ctx.Err() != nil {
				return // interrupted mid-simulation; not an error
			}
			log.Printf("fleetd: simulation failed: %v", simErr)
			return
		}
		log.Printf("fleetd: simulated %d nodes x %.0fh: %d raw events (%d DCE / %d DUE / %d SDC), "+
			"%d reports, %d crashes (%d silent)",
			res.Nodes, res.Hours, res.RawEvents, res.DCE, res.DUE, res.SDC,
			res.Reports, res.Crashes, res.SilentCrashes)
		q := res.Quality
		log.Printf("fleetd: policy: avoided %d/%d SDCs (%.1f%%) for %.2f%% capacity (%d drains, %d retires)",
			q.SDCAvoided, q.SDCTotal, 100*q.AvoidedFrac, 100*q.CapacityLostFrac, q.Drained, q.Retired)
	}()

	// closeState checkpoints and closes the durability layer on a clean
	// shutdown (a kill -9 skips this — that is what the WAL is for).
	closeState := func() {
		if *stateDir == "" {
			return
		}
		if err := coord.Close(); err != nil {
			log.Printf("fleetd: closing durable state: %v", err)
		}
	}

	if *once {
		<-simDone
		stop()
		_ = d.Wait()
		closeState()
		if simErr != nil {
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
		return
	}

	<-ctx.Done()
	log.Print("fleetd: signal received, draining")
	if err := d.Wait(); err != nil {
		log.Printf("fleetd: %v", err)
	}
	<-simDone
	closeState()
	log.Print("fleetd: shut down cleanly")
}
