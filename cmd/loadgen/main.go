// Command loadgen drives a running decoded server with open- or
// closed-loop decode traffic and reports throughput and latency
// percentiles — the measurement half of the online serving tier.
//
//	loadgen -url http://127.0.0.1:8344 -duration 5s            # closed loop
//	loadgen -url http://127.0.0.1:8344 -rate 20000 -conns 32   # open loop
//
// Closed loop (-rate 0) saturates: every connection issues requests
// back-to-back, measuring the server's capacity. Open loop offers a
// fixed rate regardless of completions, measuring latency and shedding
// under a chosen load — including deliberate overload.
//
// Every response is run through the strict wire codec; codec violations
// are counted separately from sheds and transport errors, and -min-
// completions / the zero-codec-error gate make loadgen usable as a CI
// smoke (scripts/check.sh does exactly that).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/httpx"
	"hbm2ecc/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8344", "decoded base URL")
	scheme := flag.String("scheme", "DuetECC", "scheme to decode against")
	duration := flag.Duration("duration", 2*time.Second, "how long to offer load")
	rate := flag.Float64("rate", 0, "offered requests/sec; 0 = closed loop (saturate)")
	conns := flag.Int("conns", 8, "concurrent connections")
	entries := flag.Int("entries", 1, "entries per request (1..512)")
	errFrac := flag.Float64("errfrac", 0.25, "fraction of entries corrupted with sampled error patterns")
	seed := flag.Int64("seed", 2021, "corpus seed")
	wait := flag.Duration("wait", 0, "poll /healthz for up to this long before starting (server warm-up)")
	minCompletions := flag.Int64("min-completions", 0, "exit nonzero unless at least this many requests completed")
	jsonOut := flag.Bool("json", false, "emit the stats as JSON instead of the human summary")
	flag.Parse()

	if err := run(*url, *scheme, *duration, *rate, *conns, *entries, *errFrac, *seed, *wait, *minCompletions, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(url, scheme string, duration time.Duration, rate float64, conns, entries int, errFrac float64, seed int64, wait time.Duration, minCompletions int64, jsonOut bool) error {
	s, err := core.SchemeByName(scheme)
	if err != nil {
		return err
	}
	if entries < 1 || entries > serve.MaxRequestEntries {
		return fmt.Errorf("entries %d out of range [1, %d]", entries, serve.MaxRequestEntries)
	}

	client := httpx.NewClient(30 * time.Second)
	ctx := context.Background()
	if wait > 0 {
		if err := waitHealthy(ctx, client, url, wait); err != nil {
			return err
		}
	}

	// Pre-marshal a pool of request bodies so the generator's own cost
	// per request is one POST, not an encode pipeline.
	bodies := buildCorpus(s, entries, errFrac, seed)
	var next atomic.Int64
	var codecErrs atomic.Int64

	do := func(ctx context.Context) (serve.LoadOutcome, int) {
		body := bodies[next.Add(1)%int64(len(bodies))]
		var raw json.RawMessage
		err := client.PostJSON(ctx, url+"/v1/decode", body, &raw)
		if err != nil {
			var se *httpx.StatusError
			if errors.As(err, &se) && se.Code == http.StatusServiceUnavailable {
				return serve.LoadShed, 0
			}
			return serve.LoadError, 0
		}
		resp, err := serve.DecodeDecodeResponse(raw)
		if err != nil || len(resp.Results) != entries {
			codecErrs.Add(1)
			return serve.LoadError, 0
		}
		return serve.LoadOK, len(resp.Results)
	}

	st := serve.RunLoad(ctx, serve.LoadOptions{Conns: conns, Duration: duration, Rate: rate}, do)

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			return err
		}
	} else {
		mode := "closed-loop"
		if rate > 0 {
			mode = fmt.Sprintf("open-loop %.0f req/s", rate)
		}
		fmt.Printf("loadgen: %s against %s (%s, %d conns, %d entries/req, %.0f%% errored)\n",
			mode, url, scheme, conns, entries, errFrac*100)
		fmt.Printf("  offered %d  issued %d  completed %d  shed %d  errors %d  codec-errors %d  overruns %d\n",
			st.Offered, st.Issued, st.Completed, st.Shed, st.Errors, codecErrs.Load(), st.Overruns)
		fmt.Printf("  throughput %.0f req/s (%.0f entries/s) over %.1fms\n",
			st.RequestsPerSec, st.EntriesPerSec, st.ElapsedMS)
		fmt.Printf("  latency p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms  mean %.3fms\n",
			st.P50MS, st.P95MS, st.P99MS, st.MaxMS, st.MeanMS)
	}

	if ce := codecErrs.Load(); ce > 0 {
		return fmt.Errorf("%d responses violated the wire codec", ce)
	}
	if st.Completed < minCompletions {
		return fmt.Errorf("completed %d requests, want >= %d", st.Completed, minCompletions)
	}
	return nil
}

// buildCorpus pre-marshals a pool of decode requests: encoded entries
// of varying payloads, a fraction corrupted with sampled Monte-Carlo
// error patterns (3 Bits / 1 Beat / 1 Entry round-robin).
func buildCorpus(s core.Scheme, entries int, errFrac float64, seed int64) []serve.DecodeRequest {
	const pool = 64
	rng := rand.New(rand.NewSource(seed))
	smp := errormodel.NewSampler(seed)
	classes := []errormodel.Pattern{errormodel.Bits3, errormodel.Beat1, errormodel.Entry1}
	reqs := make([]serve.DecodeRequest, pool)
	for p := range reqs {
		req := serve.DecodeRequest{Scheme: s.Name(), Entries: make([]string, entries)}
		for i := range req.Entries {
			var data [bitvec.DataBytes]byte
			rng.Read(data[:])
			wire := s.Encode(data)
			if rng.Float64() < errFrac {
				wire = wire.Xor(smp.Sample(classes[rng.Intn(len(classes))]))
			}
			req.Entries[i] = serve.FormatEntry(wire)
		}
		reqs[p] = req
	}
	return reqs
}

// waitHealthy polls /healthz until it answers or the budget elapses.
func waitHealthy(ctx context.Context, client *httpx.Client, url string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		err := client.GetJSON(ctx, url+"/healthz", nil)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %w", url, budget, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
