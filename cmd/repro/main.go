// Command repro runs the entire reproduction end-to-end and prints a
// paper-vs-measured summary for every table and figure. It is the
// one-stop verification driver behind EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hbm2ecc/internal/core"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/evalmc"
	"hbm2ecc/internal/experiments"
	"hbm2ecc/internal/hwmodel"
	"hbm2ecc/internal/obs"
	"hbm2ecc/internal/sysrel"
	"hbm2ecc/internal/textplot"
	"hbm2ecc/internal/trends"
)

func main() {
	seed := flag.Int64("seed", 2021, "random seed")
	runs := flag.Int("runs", 300, "campaign microbenchmark runs")
	samples := flag.Int("samples", 400_000, "Monte-Carlo samples per sampled pattern class")
	metrics := flag.String("metrics", "",
		"on exit, print per-phase span durations and dump all metrics in Prometheus text format to this file (\"-\" = stdout)")
	flag.Parse()

	// SIGINT/SIGTERM cancels the long-running stages; repro has no
	// checkpoint (it is a verification driver), so it simply stops early
	// and exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	sum := textplot.NewTable("experiment", "quantity", "paper", "measured")

	// ---- Characterization (Figs. 3-5, Table 1) ----
	fmt.Println("== beam campaign ==")
	an := experiments.Campaign(experiments.CampaignConfig{Seed: *seed, Runs: *runs, Ctx: ctx})
	if ctx.Err() != nil {
		fmt.Println("repro: interrupted during the beam campaign; exiting")
		return
	}
	fmt.Printf("%d events, %d damaged entries filtered, %d/%d runs discarded (%.2f%%; paper 0.60%%)\n",
		len(an.Events), len(an.DamagedEntries), an.DiscardedRuns, an.TotalRuns,
		100*float64(an.DiscardedRuns)/float64(an.TotalRuns))

	cb := an.ClassBreakdown()
	sum.AddRow("Fig. 4a", "SBSE fraction", "65% ± 2.3%", pct(cb[0].P))
	sum.AddRow("Fig. 4a", "MBME fraction", "28% ± 2.1%", pct(cb[3].P))
	_, maxBreadth := an.MBMEBreadth()
	sum.AddRow("Fig. 4b", "broadest MBME event", "5,359 entries", fmt.Sprintf("%d entries", maxBreadth))
	sum.AddRow("Fig. 4c", "byte-aligned multi-bit", "74.6% ± 3.8%", pct(an.ByteAlignedFraction().P))
	_, inv, tot := an.SeverityHistogram(true)
	sum.AddRow("Fig. 5", "full-inversion share", "~15%", pct(float64(inv)/float64(max(tot, 1))))
	tab := an.Table1()
	sum.AddRow("Tab. 1", "1 Bit", "73.98%", pct(tab[errormodel.Bit1].P))
	sum.AddRow("Tab. 1", "1 Byte", "22.56%", pct(tab[errormodel.Byte1].P))
	sum.AddRow("Tab. 1", "1 Entry", "2.23%", pct(tab[errormodel.Entry1].P))

	dir := an.IntermittentDirection
	if n := dir.OneToZero + dir.ZeroToOne; n > 0 {
		sum.AddRow("§4", "intermittent 1->0 share", "99.8% ± 0.16%", pct(float64(dir.OneToZero)/float64(n)))
	}

	// ---- Displacement damage (Fig. 3) ----
	fmt.Println("== displacement damage ==")
	dev, _ := experiments.DamagedGPU(*seed + 1)
	sweep, err := experiments.RefreshSweep(dev,
		[]float64{0.008, 0.012, 0.016, 0.024, 0.032, 0.048, 0.064}, *seed+2)
	if err != nil {
		log.Fatal(err)
	}
	sum.AddRow("Fig. 3a", "weak cells @16ms", "~1,000", fmt.Sprintf("%d", sweep.Counts[2]))
	sum.AddRow("Fig. 3b", "retention distribution", "normal fit",
		fmt.Sprintf("Normal(%.1fms, %.1fms)", sweep.FitMu*1000, sweep.FitSigma*1000))
	acc, err := experiments.Accumulation(*seed+3, 30, 60)
	if err != nil {
		log.Fatal(err)
	}
	sum.AddRow("Fig. 3c", "fluence-linearity R²", "0.97", fmt.Sprintf("%.3f", acc.Fit.R2))

	// ---- Trends (Fig. 1) ----
	tr, err := trends.Compute(30, an.MultiBitFraction().P, 8)
	if err != nil {
		log.Fatal(err)
	}
	sum.AddRow("Fig. 1", "SER falls vs capacity growth", "yes",
		fmt.Sprintf("%v (exp %.2f vs %.2f)", tr.SERFallsFasterThanCapacityGrows(), tr.SERFit.B, tr.CapFit.B))

	// ---- ECC evaluation (Table 2, Fig. 8) ----
	fmt.Println("== ECC evaluation ==")
	opts := evalmc.Options{Seed: *seed, Samples3b: *samples, SamplesBeat: *samples,
		SamplesEntry: *samples, Parallel: true, Ctx: ctx}
	schemes := []core.Scheme{
		core.NewSECDED(false, false), core.NewDuetECC(), core.NewTrioECC(),
		core.NewSEC2bEC(false, false), core.NewSSC(true), core.NewSSCDSDPlus(),
	}
	if *metrics != "" {
		for i, s := range schemes {
			schemes[i] = core.Instrumented(s)
		}
	}
	res, err := evalmc.EvaluateAllCtx(schemes, opts)
	if err != nil {
		fmt.Println("repro: interrupted during the ECC evaluation; exiting")
		return
	}
	base := res[0].Weighted()
	duet := res[1].Weighted()
	trio := res[2].Weighted()
	ni2b := res[3].Weighted()
	dsd := res[5].Weighted()
	sum.AddRow("Fig. 8", "SEC-DED corrected", "74%", pct(base.DCE))
	sum.AddRow("Fig. 8", "SEC-DED SDC", "5.4%", pct(base.SDC))
	sum.AddRow("Fig. 8", "DuetECC SDC", "0.0013%", pct(duet.SDC))
	sum.AddRow("Fig. 8", "TrioECC corrected", "97%", pct(trio.DCE))
	sum.AddRow("Fig. 8", "TrioECC SDC", "0.0085%", pct(trio.SDC))
	sum.AddRow("Fig. 8", "NI:SEC-2bEC SDC (regression)", "9.3%", pct(ni2b.SDC))
	sum.AddRow("Abstract", "DuetECC SDC reduction", ">3 orders",
		fmt.Sprintf("%.2f orders", evalmc.SDCReduction(base, duet)))
	sum.AddRow("Abstract", "SSC-DSD+ SDC reduction", "~5 orders",
		fmt.Sprintf("%.2f orders", evalmc.SDCReduction(base, dsd)))
	sum.AddRow("Abstract", "Trio vs Duet DUE reduction", "7.87x",
		fmt.Sprintf("%.2fx", evalmc.DUEReduction(duet, trio)))

	// ---- Hardware (Table 3) ----
	hw := hwmodel.Baseline()
	sum.AddRow("Tab. 3", "SEC-DED encoder", "1176 AND2 / 0.09ns",
		fmt.Sprintf("%d AND2 / %.2fns", hw.Encoder.AreaAND2, hw.Encoder.DelayNS))
	sum.AddRow("Tab. 3", "SEC-DED decoder", "2467 AND2 / 0.20ns",
		fmt.Sprintf("%d AND2 / %.2fns", hw.Decoder.AreaAND2, hw.Decoder.DelayNS))
	for _, r := range hwmodel.All() {
		if r.Name == "TrioECC" && r.Variant == hwmodel.Perf {
			sum.AddRow("§7.2", "TrioECC Perf extra decoder area", "~2500 AND2",
				fmt.Sprintf("%d AND2", r.Decoder.AreaAND2-hw.Decoder.AreaAND2))
		}
	}

	// ---- System level (Fig. 9, §7.3) ----
	gDuet := sysrel.FromWeighted(duet, sysrel.A100MemoryGb)
	gTrio := sysrel.FromWeighted(trio, sysrel.A100MemoryGb)
	gBase := sysrel.FromWeighted(base, sysrel.A100MemoryGb)
	d05 := sysrel.Exascale(gDuet, []float64{0.5, 2}, 0)
	t05 := sysrel.Exascale(gTrio, []float64{0.5, 2}, 0)
	s05 := sysrel.Exascale(gBase, []float64{0.5}, 0)
	sum.AddRow("Fig. 9a", "DuetECC MTTI range", "1.6–6.3 h",
		fmt.Sprintf("%.1f–%.1f h", d05[1].MTTIHours, d05[0].MTTIHours))
	sum.AddRow("Fig. 9a", "TrioECC MTTI range", "9.4–37.6 h",
		fmt.Sprintf("%.1f–%.1f h", t05[1].MTTIHours, t05[0].MTTIHours))
	sum.AddRow("Fig. 9b", "TrioECC MTTF range", "5.7–22.6 mo",
		fmt.Sprintf("%.1f–%.1f mo", sysrel.HoursToMonths(t05[1].MTTFHours), sysrel.HoursToMonths(t05[0].MTTFHours)))
	sum.AddRow("§7.3", "SEC-DED SDC @0.5EF", "22.5 h", fmt.Sprintf("%.1f h", s05[0].MTTFHours))
	avB := sysrel.Automotive(gBase)
	avD := sysrel.Automotive(gDuet)
	avT := sysrel.Automotive(gTrio)
	sum.AddRow("§7.3", "SEC-DED HBM2 SDC", "216 FIT", fmt.Sprintf("%.0f FIT", gBase.SDCFIT))
	sum.AddRow("§7.3", "DuetECC HBM2 SDC", "0.045 FIT", fmt.Sprintf("%.3f FIT", gDuet.SDCFIT))
	sum.AddRow("§7.3", "TrioECC HBM2 SDC", "0.29 FIT", fmt.Sprintf("%.3f FIT", gTrio.SDCFIT))
	sum.AddRow("§7.3", "fleet SDC/day (SEC-DED)", "41", fmt.Sprintf("%.0f", avB.SDCPerDay))
	sum.AddRow("§7.3", "days between SDC (DuetECC)", "115", fmt.Sprintf("%.0f", avD.DaysBetweenSDC))
	sum.AddRow("§7.3", "days between SDC (TrioECC)", "18", fmt.Sprintf("%.0f", avT.DaysBetweenSDC))
	sum.AddRow("§7.3", "DuetECC fleet DUE/day", "148", fmt.Sprintf("%.0f", avD.DUEPerDay))

	fmt.Println()
	fmt.Println("================ paper vs measured ================")
	fmt.Println(sum)
	fmt.Printf("total runtime: %s\n", time.Since(start).Round(time.Millisecond))

	if *metrics != "" {
		fmt.Println("\n== telemetry: per-phase span durations ==")
		if err := obs.DefaultTracer.WritePhaseSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if err := obs.Default.DumpPrometheus(*metrics); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
		if *metrics != "-" {
			fmt.Printf("metrics written to %s\n", *metrics)
		}
	}
}

func pct(p float64) string {
	if p < 0.0001 {
		return fmt.Sprintf("%.6f%%", p*100)
	}
	return fmt.Sprintf("%.2f%%", p*100)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
