package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"hbm2ecc/internal/workload"
)

// WorkloadCellBench is one (scheme, kernel) cell's throughput point.
type WorkloadCellBench struct {
	Scheme string `json:"scheme"`
	Kernel string `json:"kernel"`
	Runs   int    `json:"runs"`
	// OpsPerRun is the kernel's deterministic memory-op count.
	OpsPerRun int64 `json:"ops_per_run"`
	// RunsPerSec is full fault-injection runs (device build, kernel
	// execution through the ECC read path, classification) per second.
	RunsPerSec float64 `json:"runs_per_sec"`
	// Outcome mix, as fractions of runs — the payload the throughput
	// buys; also a cross-machine determinism check (machine-independent
	// for a given seed).
	Masked      float64 `json:"masked"`
	Tolerable   float64 `json:"tolerable_sdc"`
	CriticalSDC float64 `json:"critical_sdc"`
	DUE         float64 `json:"due"`
	Crash       float64 `json:"crash"`
}

// WorkloadReport is the BENCH_workload.json schema.
type WorkloadReport struct {
	Schema     string              `json:"schema"`
	GoVersion  string              `json:"go_version"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Seed       int64               `json:"seed"`
	Runs       int                 `json:"runs_per_cell"`
	Quick      bool                `json:"quick"`
	Cells      []WorkloadCellBench `json:"cells"`
	// TotalRunsPerSec is the whole campaign's aggregate throughput with
	// cell-level parallelism on.
	TotalRunsPerSec float64 `json:"total_runs_per_sec"`
	WallMS          float64 `json:"wall_ms"`
	// ResumeIdentical is the checkpoint-resume differential lock: a
	// mid-campaign checkpoint is taken, resumed, and the merged results
	// must DeepEqual the uninterrupted run. The bench run fails if false.
	ResumeIdentical bool `json:"resume_identical"`
}

// runWorkloadBench measures the workload outcome engine's throughput:
// full campaign wall clock, per-cell runs/sec, and the checkpoint-resume
// differential lock.
func runWorkloadBench(out string, seed int64, quick bool) error {
	runs := 300
	if quick {
		runs = 40
	}
	opts := workload.Options{Seed: seed, Runs: runs, Parallel: true}

	rep := WorkloadReport{
		Schema:     "hbm2ecc/bench_workload/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Runs:       runs,
		Quick:      quick,
	}

	start := time.Now()
	results, err := workload.Campaign(opts)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	rep.WallMS = float64(wall.Microseconds()) / 1000

	totalRuns := 0
	fmt.Printf("%-10s %-10s %6s %8s %12s %8s %8s %8s %8s %8s\n",
		"scheme", "kernel", "runs", "ops/run", "runs/sec", "masked", "tolSDC", "critSDC", "DUE", "crash")
	for _, r := range results {
		totalRuns += r.Runs
		// Per-cell rate: re-time one cell in isolation so the number is
		// not distorted by cell-level parallelism.
		t0 := time.Now()
		if _, err := workload.RunCell(r.Scheme, r.Kernel, workload.Options{Seed: seed, Runs: runs}); err != nil {
			return err
		}
		rate := float64(runs) / time.Since(t0).Seconds()
		cb := WorkloadCellBench{
			Scheme: r.Scheme, Kernel: r.Kernel.String(), Runs: r.Runs,
			OpsPerRun: r.TotalOps, RunsPerSec: rate,
			Masked: r.Frac(workload.Masked), Tolerable: r.Frac(workload.TolerableSDC),
			CriticalSDC: r.Frac(workload.CriticalSDC), DUE: r.Frac(workload.DUE),
			Crash: r.Frac(workload.Crash),
		}
		rep.Cells = append(rep.Cells, cb)
		fmt.Printf("%-10s %-10s %6d %8d %12.1f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			cb.Scheme, cb.Kernel, cb.Runs, cb.OpsPerRun, cb.RunsPerSec,
			cb.Masked, cb.Tolerable, cb.CriticalSDC, cb.DUE, cb.Crash)
	}
	rep.TotalRunsPerSec = float64(totalRuns) / wall.Seconds()
	fmt.Printf("campaign: %d runs in %.1fms (%.1f runs/sec aggregate)\n",
		totalRuns, rep.WallMS, rep.TotalRunsPerSec)

	// Checkpoint-resume differential lock: interrupt after half the
	// cells, resume from the stored cells, require identical results.
	rep.ResumeIdentical, err = resumeDifferential(opts, results)
	if err != nil {
		return err
	}
	if !rep.ResumeIdentical {
		return fmt.Errorf("workload bench: resumed campaign differs from uninterrupted run")
	}
	fmt.Println("checkpoint-resume differential: identical")

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// resumeDifferential seeds a checkpoint with half of the full run's
// cells, resumes the campaign from it, and compares against full.
func resumeDifferential(opts workload.Options, full []workload.CellResult) (bool, error) {
	ck := workload.NewCheckpoint(opts)
	for i, r := range full {
		if i%2 == 0 {
			ck.Store(r.Scheme, r.Kernel, r)
		}
	}
	resumed := opts
	resumed.Resume = ck.Lookup
	got, err := workload.Campaign(resumed)
	if err != nil {
		return false, err
	}
	return reflect.DeepEqual(got, full), nil
}
