// Command bench is the reproducible decode-throughput benchmark runner:
// it times encode and decode (reference, fast single-shot, and batch
// paths) for every Table-2 scheme over a corpus drawn from the sampled
// Monte-Carlo error classes, times an end-to-end EvaluateAll, and emits
// the results as JSON (BENCH_decode.json) so every future optimization
// PR has a trajectory to beat.
//
// Usage:
//
//	go run ./cmd/bench                  # full run, writes BENCH_decode.json
//	go run ./cmd/bench -quick -out f    # CI smoke (scripts/check.sh)
//	go run ./cmd/bench -cluster         # distributed scaling, BENCH_cluster.json
//	go run ./cmd/bench -serve           # online serving tier, BENCH_serve.json
//	go run ./cmd/bench -fleet           # fleet health plane, BENCH_fleet.json
//
// Numbers are wall-clock and machine-dependent; the speedup ratios
// (reference vs fast path on the same machine) are the stable signal.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/bits"
	"os"
	"runtime"
	"time"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/cluster"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/ecc"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/evalmc"
)

// ClassBench is one scheme's timings on a single sampled error class.
type ClassBench struct {
	Class        string  `json:"class"`
	RefNS        float64 `json:"ref_decode_ns"`
	FastNS       float64 `json:"fast_decode_ns"`
	BatchNS      float64 `json:"batch_decode_ns"`
	SpeedupFast  float64 `json:"speedup_fast"`
	SpeedupBatch float64 `json:"speedup_batch"`
}

// SchemeBench is one scheme's measured timings, in nanoseconds per entry.
type SchemeBench struct {
	Name     string  `json:"name"`
	EncodeNS float64 `json:"encode_ns"`
	// RefNS is the reference (pre-fast-path) decoder on the error corpus.
	RefNS float64 `json:"ref_decode_ns"`
	// FastNS is the table-driven single-shot decoder on the same corpus.
	FastNS float64 `json:"fast_decode_ns"`
	// BatchNS is the batch fast path, the configuration the Monte-Carlo
	// evaluator runs.
	BatchNS float64 `json:"batch_decode_ns"`
	// CleanBatchNS is the batch fast path on error-free entries (the
	// common case of a real memory read).
	CleanBatchNS float64 `json:"clean_batch_decode_ns"`
	// SlicedBatchNS is the bit-sliced slab kernel (Transpose64 +
	// DecodeSlab, 64 entries per slab) on the errored corpus; CleanSlicedNS
	// is the same kernel on error-free entries. Binary schemes keep their
	// scalar two-pass tables as the DecodeWireBatch default because the
	// transpose alone costs more than their scalar decode (DESIGN.md §14);
	// these columns record the crossover on every scheme.
	SlicedBatchNS float64 `json:"sliced_batch_decode_ns"`
	CleanSlicedNS float64 `json:"clean_sliced_decode_ns"`
	// CleanMixBatchNS and CleanMixSlabNS time a clean-dominated stream
	// (one 1-bit error per 256 entries, the 0/1-bit mix of a real read
	// path) through, respectively, the scalar batch decoder plus a
	// per-entry outcome classification loop, and the slab-resident
	// ClassifyErrSlab kernel that screens zero-syndrome lanes with
	// word-parallel XOR reductions. CleanPathSpeedup is their ratio — the
	// headline clean-path win of the structure-of-arrays layout.
	CleanMixBatchNS  float64 `json:"clean_mix_batch_ns"`
	CleanMixSlabNS   float64 `json:"clean_mix_slab_ns"`
	CleanPathSpeedup float64 `json:"clean_path_speedup"`
	// SpeedupFast and SpeedupBatch are RefNS/FastNS and RefNS/BatchNS.
	SpeedupFast  float64 `json:"speedup_fast"`
	SpeedupBatch float64 `json:"speedup_batch"`
	// PerClass breaks the decode timings down by sampled error class.
	// The reference decoder bails out on the first uncorrectable codeword,
	// so its cost varies strongly with the class mix; the mixed-corpus
	// numbers above average over the three classes.
	PerClass []ClassBench `json:"per_class"`
}

// EvalBench is the end-to-end Monte-Carlo evaluation timing.
type EvalBench struct {
	Samples      int     `json:"samples_per_class"`
	Schemes      int     `json:"schemes"`
	Trials       int     `json:"trials"`
	Millis       float64 `json:"wall_ms"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// Report is the BENCH_decode.json schema.
type Report struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Seed       int64         `json:"seed"`
	Corpus     int           `json:"corpus"`
	Quick      bool          `json:"quick"`
	Schemes    []SchemeBench `json:"schemes"`
	Eval       EvalBench     `json:"evaluate_all"`
}

var sink int

// cleanMixErrEvery is the error rate of the clean-dominated stream: one
// 1-bit error per this many entries. 256 is still orders of magnitude
// above any real DRAM soft-error rate, so the measured clean-path
// speedup is conservative.
const cleanMixErrEvery = 256

// measure runs pass repeatedly until minTime has elapsed and returns the
// mean nanoseconds per corpus entry.
func measure(minTime time.Duration, corpusLen int, pass func()) float64 {
	pass() // warm tables and caches
	iters := 0
	var elapsed time.Duration
	for elapsed < minTime {
		start := time.Now()
		pass()
		elapsed += time.Since(start)
		iters++
	}
	return float64(elapsed.Nanoseconds()) / float64(iters) / float64(corpusLen)
}

// corpusFor draws received words for one scheme: clean entries corrupted
// round-robin by the three sampled Monte-Carlo classes (3 Bits, 1 Beat,
// 1 Entry), the classes whose volume dominates evaluator runtime.
func corpusFor(s core.Scheme, n int, seed int64) (errored, clean []bitvec.V288) {
	var data [bitvec.DataBytes]byte
	for i := range data {
		data[i] = byte(i*17 + 3)
	}
	wire := s.Encode(data)
	smp := errormodel.NewSampler(seed)
	classes := []errormodel.Pattern{errormodel.Bits3, errormodel.Beat1, errormodel.Entry1}
	errored = make([]bitvec.V288, n)
	clean = make([]bitvec.V288, n)
	for i := range errored {
		errored[i] = wire.Xor(smp.Sample(classes[i%len(classes)]))
		clean[i] = wire
	}
	return errored, clean
}

// measureSliced times the bit-sliced slab kernel — Transpose64 plus
// DecodeSlab, 64 entries per slab — over one corpus of received words.
func measureSliced(s core.Scheme, words []bitvec.V288, out []core.WireResult, minTime time.Duration) float64 {
	sd, ok := core.AsSlabDecoder(s)
	if !ok {
		return 0
	}
	n := len(words)
	var slab bitvec.Slab
	return measure(minTime, n, func() {
		for off := 0; off < n; off += bitvec.SlabLanes {
			end := off + bitvec.SlabLanes
			if end > n {
				end = n
			}
			bitvec.Transpose64(words[off:end], &slab)
			sd.DecodeSlab(&slab, words[off:end], out[off:end])
		}
		sink += int(out[0].Status)
	})
}

// mixSlab is one prebuilt 64-entry block of the clean-dominated stream:
// the received words plus the transposed error slab and touched-lane list
// that the evaluator's sparse insertion would have produced. Both decode
// paths under test treat these buffers as read-only, so each block is
// built once and measured repeatedly.
type mixSlab struct {
	recv    []bitvec.V288
	eslab   bitvec.Slab
	touched []uint16
}

// cleanMixFor builds a clean-dominated received stream for one scheme:
// one 1-bit error per errEvery entries, everything else clean — the
// 0/1-bit mix that dominates a real read path.
func cleanMixFor(s core.Scheme, n, errEvery int, seed int64) (base bitvec.V288, slabs []*mixSlab) {
	var data [bitvec.DataBytes]byte
	for i := range data {
		data[i] = byte(i*17 + 3)
	}
	base = s.Encode(data)
	smp := errormodel.NewSampler(seed)
	for off := 0; off < n; off += bitvec.SlabLanes {
		end := off + bitvec.SlabLanes
		if end > n {
			end = n
		}
		ms := &mixSlab{recv: make([]bitvec.V288, end-off)}
		for i := range ms.recv {
			ms.recv[i] = base
			if (off+i)%errEvery == errEvery-1 {
				e := smp.Sample(errormodel.Bit1)
				ms.recv[i] = base.Xor(e)
				for w := 0; w < 5; w++ {
					for m := e[w]; m != 0; m &= m - 1 {
						p := w<<6 + bits.TrailingZeros64(m)
						ms.eslab[p] |= 1 << uint(i)
						ms.touched = appendTouched(ms.touched, uint16(p))
					}
				}
			}
		}
		slabs = append(slabs, ms)
	}
	return base, slabs
}

func appendTouched(t []uint16, p uint16) []uint16 {
	for _, q := range t {
		if q == p {
			return t
		}
	}
	return append(t, p)
}

// measureCleanMix times the clean-dominated stream through the scalar
// batch decoder plus a per-entry outcome classification loop (what the
// evaluator's scalar flush does) and through the slab-resident
// ClassifyErrSlab kernel.
func measureCleanMix(s core.Scheme, base bitvec.V288, slabs []*mixSlab, n int, out []core.WireResult, minTime time.Duration) (scalarNS, slabNS float64) {
	bd := core.AsBatchDecoder(s)
	scalarNS = measure(minTime, n, func() {
		acc := 0
		for _, ms := range slabs {
			bd.DecodeWireBatch(ms.recv, out[:len(ms.recv)])
			for i := range ms.recv {
				r := &out[i]
				if r.Status != ecc.Detected && r.Wire == base {
					acc++
				}
			}
		}
		sink += acc
	})
	sc, ok := s.(core.SlabClassifier)
	if !ok {
		return scalarNS, 0
	}
	slabNS = measure(minTime, n, func() {
		acc := 0
		for _, ms := range slabs {
			dce, _, _ := sc.ClassifyErrSlab(&ms.eslab, ms.touched, base, ms.recv)
			acc += dce
		}
		sink += acc
	})
	return scalarNS, slabNS
}

// measureDecode times the reference, fast single-shot and batch decode
// paths over one corpus of received words.
func measureDecode(s core.Scheme, words []bitvec.V288, out []core.WireResult, minTime time.Duration) (refNS, fastNS, batchNS float64) {
	n := len(words)
	if rd, ok := s.(core.RefDecoder); ok {
		refNS = measure(minTime, n, func() {
			for _, w := range words {
				sink += int(rd.DecodeWireRef(w).Status)
			}
		})
	} else {
		refNS = measure(minTime, n, func() {
			for _, w := range words {
				sink += int(s.DecodeWire(w).Status)
			}
		})
	}
	fastNS = measure(minTime, n, func() {
		for _, w := range words {
			sink += int(s.DecodeWire(w).Status)
		}
	})
	bd := core.AsBatchDecoder(s)
	const chunk = 256
	batchNS = measure(minTime, n, func() {
		for off := 0; off < n; off += chunk {
			end := off + chunk
			if end > n {
				end = n
			}
			bd.DecodeWireBatch(words[off:end], out[off:end])
		}
		sink += int(out[0].Status)
	})
	return refNS, fastNS, batchNS
}

func benchScheme(s core.Scheme, corpus int, seed int64, minTime time.Duration) SchemeBench {
	sb := SchemeBench{Name: s.Name()}
	errored, clean := corpusFor(s, corpus, seed)
	out := make([]core.WireResult, corpus)

	var data [bitvec.DataBytes]byte
	sb.EncodeNS = measure(minTime, corpus, func() {
		for i := 0; i < corpus; i++ {
			w := s.Encode(data)
			sink += int(w[0] & 1)
		}
	})

	sb.RefNS, sb.FastNS, sb.BatchNS = measureDecode(s, errored, out, minTime)

	bd := core.AsBatchDecoder(s)
	sb.CleanBatchNS = measure(minTime, corpus, func() {
		for off := 0; off < corpus; off += 256 {
			end := off + 256
			if end > corpus {
				end = corpus
			}
			bd.DecodeWireBatch(clean[off:end], out[off:end])
		}
		sink += int(out[0].Status)
	})

	sb.SlicedBatchNS = measureSliced(s, errored, out, minTime)
	sb.CleanSlicedNS = measureSliced(s, clean, out, minTime)

	base, slabs := cleanMixFor(s, corpus, cleanMixErrEvery, seed)
	sb.CleanMixBatchNS, sb.CleanMixSlabNS = measureCleanMix(s, base, slabs, corpus, out, minTime)
	if sb.CleanMixSlabNS > 0 {
		sb.CleanPathSpeedup = sb.CleanMixBatchNS / sb.CleanMixSlabNS
	}

	sb.SpeedupFast = sb.RefNS / sb.FastNS
	sb.SpeedupBatch = sb.RefNS / sb.BatchNS

	for _, p := range []errormodel.Pattern{errormodel.Bits3, errormodel.Beat1, errormodel.Entry1} {
		var payload [bitvec.DataBytes]byte
		for i := range payload {
			payload[i] = byte(i*17 + 3)
		}
		base := s.Encode(payload)
		smp := errormodel.NewSampler(seed ^ int64(p))
		words := make([]bitvec.V288, corpus)
		for i := range words {
			words[i] = base.Xor(smp.Sample(p))
		}
		cb := ClassBench{Class: p.String()}
		cb.RefNS, cb.FastNS, cb.BatchNS = measureDecode(s, words, out, minTime)
		cb.SpeedupFast = cb.RefNS / cb.FastNS
		cb.SpeedupBatch = cb.RefNS / cb.BatchNS
		sb.PerClass = append(sb.PerClass, cb)
	}
	return sb
}

func main() {
	out := flag.String("out", "", "output JSON path (default BENCH_decode.json, or BENCH_cluster.json with -cluster)")
	quick := flag.Bool("quick", false, "CI smoke mode: small corpus and sample counts")
	clusterBench := flag.Bool("cluster", false, "benchmark the distributed campaign engine's 1/2/4-worker scaling instead of decode throughput")
	serveBench := flag.Bool("serve", false, "benchmark the online decode service (single vs micro-batched) instead of decode throughput")
	fleetBench := flag.Bool("fleet", false, "benchmark the fleet health plane (10k-node agent/coordinator pipeline) instead of decode throughput")
	workloadBench := flag.Bool("workload", false, "benchmark the workload outcome engine (kernel runs/sec, resume differential) instead of decode throughput")
	ondieBench := flag.Bool("ondie", false, "benchmark the on-die ECC stage (read-path overhead, mask transform, BEER inference wall-clock) instead of decode throughput")
	gate := flag.Bool("gate", false, "regression gate: fail unless every scheme's slab-resident clean-mix path is at least as fast as its scalar batch path")
	seed := flag.Int64("seed", 2021, "corpus and evaluation seed")
	corpus := flag.Int("corpus", 8192, "received words per decode corpus")
	samples := flag.Int("samples", 50_000, "Monte-Carlo samples per sampled class in the end-to-end timing")
	minTime := flag.Duration("mintime", 300*time.Millisecond, "minimum measurement time per timing")
	flag.Parse()

	if *quick {
		*corpus = 2048
		*samples = 5_000
		*minTime = 25 * time.Millisecond
	}

	if *clusterBench {
		if *out == "" {
			*out = "BENCH_cluster.json"
		}
		if err := runClusterBench(*out, *seed, *samples); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if *serveBench {
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		if err := runServeBench(*out, *seed, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if *fleetBench {
		if *out == "" {
			*out = "BENCH_fleet.json"
		}
		if err := runFleetBench(*out, *seed, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if *ondieBench {
		if *out == "" {
			*out = "BENCH_ondie.json"
		}
		if err := runOnDieBench(*out, *seed, *quick, *minTime); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if *workloadBench {
		if *out == "" {
			*out = "BENCH_workload.json"
		}
		if err := runWorkloadBench(*out, *seed, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		*out = "BENCH_decode.json"
	}

	schemes := core.Table2Schemes()

	rep := Report{
		Schema:     "hbm2ecc/bench_decode/v2",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Corpus:     *corpus,
		Quick:      *quick,
	}

	fmt.Printf("%-14s %9s %9s %9s %9s %9s %9s %9s %9s %8s\n",
		"scheme", "encode", "ref", "fast", "batch", "sliced", "clean", "mix-scl", "mix-slab", "clean-x")
	gateFailed := false
	for _, s := range schemes {
		sb := benchScheme(s, *corpus, *seed, *minTime)
		rep.Schemes = append(rep.Schemes, sb)
		fmt.Printf("%-14s %7.1fns %7.1fns %7.1fns %7.1fns %7.1fns %7.1fns %7.2fns %7.2fns %7.1fx\n",
			sb.Name, sb.EncodeNS, sb.RefNS, sb.FastNS, sb.BatchNS, sb.SlicedBatchNS,
			sb.CleanBatchNS, sb.CleanMixBatchNS, sb.CleanMixSlabNS, sb.CleanPathSpeedup)
		for _, cb := range sb.PerClass {
			fmt.Printf("  %-12s %9s %7.1fns %7.1fns %7.1fns %9s %9s (%5.2fx fast, %5.2fx batch)\n",
				cb.Class, "", cb.RefNS, cb.FastNS, cb.BatchNS, "", "", cb.SpeedupFast, cb.SpeedupBatch)
		}
		if *gate && sb.CleanMixSlabNS > sb.CleanMixBatchNS {
			gateFailed = true
			fmt.Fprintf(os.Stderr, "bench: GATE: %s slab clean-mix path (%.2fns) slower than scalar batch (%.2fns)\n",
				sb.Name, sb.CleanMixSlabNS, sb.CleanMixBatchNS)
		}
	}
	if gateFailed {
		os.Exit(1)
	}

	start := time.Now()
	results := evalmc.EvaluateAll(schemes, evalmc.Options{
		Seed:         *seed,
		Samples3b:    *samples,
		SamplesBeat:  *samples,
		SamplesEntry: *samples,
		Parallel:     true,
	})
	wall := time.Since(start)
	trials := 0
	for _, r := range results {
		for _, p := range r.PerPattern {
			trials += p.N
		}
	}
	rep.Eval = EvalBench{
		Samples:      *samples,
		Schemes:      len(schemes),
		Trials:       trials,
		Millis:       float64(wall.Microseconds()) / 1000,
		TrialsPerSec: float64(trials) / wall.Seconds(),
	}
	fmt.Printf("EvaluateAll: %d trials over %d schemes in %.1fms (%.2fM trials/sec)\n",
		trials, len(schemes), rep.Eval.Millis, rep.Eval.TrialsPerSec/1e6)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
	_ = sink
}

// ClusterWorkerBench is one worker-count point of the scaling curve.
type ClusterWorkerBench struct {
	Workers int `json:"workers"`
	// MakespanMS is the campaign's critical path: the maximum over
	// workers of the summed calibrated costs of the cells that worker
	// actually completed under the real lease protocol.
	MakespanMS float64 `json:"makespan_ms"`
	// TrialsPerSec is total trials divided by the makespan — the
	// aggregate throughput the assignment achieves on a machine with at
	// least `workers` idle cores.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// Speedup is this row's TrialsPerSec over the 1-worker row's.
	Speedup float64 `json:"speedup_vs_1"`
	// WallMS is the measured single-machine wall clock of the run, for
	// transparency (on a 1-core machine it shows no scaling: workers
	// time-share the CPU).
	WallMS          float64   `json:"wall_ms"`
	Requeues        uint64    `json:"requeues"`
	CellsPerWorker  []int     `json:"cells_per_worker"`
	BusyMSPerWorker []float64 `json:"busy_ms_per_worker"`
}

// ClusterReport is the BENCH_cluster.json schema.
type ClusterReport struct {
	Schema        string               `json:"schema"`
	GoVersion     string               `json:"go_version"`
	GOMAXPROCS    int                  `json:"gomaxprocs"`
	Seed          int64                `json:"seed"`
	Samples       int                  `json:"samples_per_class"`
	Trials        int                  `json:"trials"`
	Method        string               `json:"method"`
	CalibrationMS float64              `json:"calibration_wall_ms"`
	Workers       []ClusterWorkerBench `json:"workers"`
}

const clusterMethod = "Per-cell costs are calibrated by timing every (scheme, pattern) cell " +
	"sequentially on one core (after a warm-up pass). Each worker count then runs the real " +
	"cluster engine — coordinator over loopback HTTP, lease protocol, LPT scheduling — and " +
	"the reported makespan is the maximum over workers of the summed calibrated costs of the " +
	"cells each worker actually completed. That is the campaign's critical path, i.e. the " +
	"wall clock on a machine with >= `workers` idle cores; it is reported instead of raw " +
	"wall clock because this environment may expose fewer cores than workers, in which case " +
	"concurrent workers time-share the CPU and wall clock cannot show scaling. The measured " +
	"wall_ms is included alongside for transparency."

// runClusterBench measures the distributed campaign engine's scaling
// over the Table-2 corpus at 1, 2 and 4 workers.
func runClusterBench(out string, seed int64, samples int) error {
	spec := cluster.Spec{
		Schemes:      core.Table2Names(),
		Seed:         seed,
		Samples3b:    samples,
		SamplesBeat:  samples,
		SamplesEntry: samples,
		Shards:       1,
	}
	opts := spec.Options()

	rep := ClusterReport{
		Schema:     "hbm2ecc/bench_cluster/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Samples:    samples,
		Method:     clusterMethod,
	}

	// Calibrate per-cell costs sequentially: warm pass (scheme table
	// construction, caches), then the timed pass.
	schemes := map[string]core.Scheme{}
	for _, name := range spec.Schemes {
		s, err := core.SchemeByName(name)
		if err != nil {
			return err
		}
		schemes[name] = s
	}
	cost := make([]float64, spec.NumCells()) // seconds per cell
	for pass := 0; pass < 2; pass++ {
		start := time.Now()
		rep.Trials = 0
		for id := 0; id < spec.NumCells(); id++ {
			c, err := spec.Cell(id)
			if err != nil {
				return err
			}
			t0 := time.Now()
			r, err := evalmc.EvaluateCell(schemes[c.Scheme], c.PatternP(), opts)
			if err != nil {
				return err
			}
			cost[id] = time.Since(t0).Seconds()
			rep.Trials += r.N
		}
		rep.CalibrationMS = float64(time.Since(start).Microseconds()) / 1000
	}
	fmt.Printf("calibrated %d cells, %d trials in %.1fms\n",
		spec.NumCells(), rep.Trials, rep.CalibrationMS)

	for _, n := range []int{1, 2, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		start := time.Now()
		_, coord, err := cluster.RunLocal(ctx, cluster.CoordinatorOptions{Spec: spec}, n,
			cluster.WorkerOptions{ID: "bench", PollMax: 5 * time.Millisecond})
		cancel()
		if err != nil {
			return err
		}
		wall := time.Since(start)

		perWorker := map[string]float64{}
		counts := map[string]int{}
		for _, a := range coord.Assignments() {
			perWorker[a.Worker] += cost[a.Cell.ID]
			counts[a.Worker]++
		}
		wb := ClusterWorkerBench{
			Workers:  n,
			WallMS:   float64(wall.Microseconds()) / 1000,
			Requeues: coord.Status().Requeues,
		}
		var makespan float64
		for w, busy := range perWorker {
			if busy > makespan {
				makespan = busy
			}
			wb.CellsPerWorker = append(wb.CellsPerWorker, counts[w])
			wb.BusyMSPerWorker = append(wb.BusyMSPerWorker, busy*1000)
		}
		wb.MakespanMS = makespan * 1000
		wb.TrialsPerSec = float64(rep.Trials) / makespan
		if len(rep.Workers) == 0 {
			wb.Speedup = 1
		} else {
			wb.Speedup = wb.TrialsPerSec / rep.Workers[0].TrialsPerSec
		}
		rep.Workers = append(rep.Workers, wb)
		fmt.Printf("workers=%d  makespan=%.1fms  %.2fM trials/sec  speedup=%.2fx  (wall %.1fms)\n",
			n, wb.MakespanMS, wb.TrialsPerSec/1e6, wb.Speedup, wb.WallMS)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
