package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/dram"
	"hbm2ecc/internal/hbm2"
	"hbm2ecc/internal/ondie"
)

// OnDieStageBench is one candidate stage's measured costs.
type OnDieStageBench struct {
	Stage      string `json:"stage"`
	Chunks     int    `json:"chunks"`
	ParityBits int    `json:"parity_bits"`
	// CleanReadNS / RawReadNS time dram.Device.ReadWire on an error-free
	// entry with and without the stage installed — the read-path overhead
	// of the on-die decode fast path (clean chunks skip the syndrome).
	CleanReadNS float64 `json:"clean_read_ns"`
	RawReadNS   float64 `json:"raw_read_ns"`
	// ErroredReadNS times the read of an entry carrying a 2-bit error
	// (the full syndrome + LUT + flip path).
	ErroredReadNS float64 `json:"errored_read_ns"`
	// TransformNS times Stage.TransformMask on a 2-bit error mask — the
	// per-trial cost `ecceval -ondie` adds to every Monte-Carlo sample.
	TransformNS float64 `json:"transform_ns"`
	// Inference: the BEER-style H-matrix recovery against a black-box
	// device carrying this stage.
	InferExperiments int     `json:"infer_experiments"`
	InferCells       int     `json:"infer_cells_planted"`
	InferMS          float64 `json:"infer_ms"`
	InferExact       bool    `json:"infer_exact_match"`
}

// OnDieReport is the BENCH_ondie.json schema.
type OnDieReport struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Seed       int64             `json:"seed"`
	Quick      bool              `json:"quick"`
	Stages     []OnDieStageBench `json:"stages"`
	WallMS     float64           `json:"wall_ms"`
}

// timeReads measures ns/read of dev.ReadWire(idx, t) over at least minTime.
func timeReads(dev *dram.Device, idx int64, minTime time.Duration) float64 {
	var sink bitvec.V288
	n := 0
	start := time.Now()
	for time.Since(start) < minTime {
		for i := 0; i < 256; i++ {
			sink = dev.ReadWire(idx, 1.0)
		}
		n += 256
	}
	_ = sink
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func runOnDieBench(out string, seed int64, quick bool, minTime time.Duration) error {
	start := time.Now()
	rep := OnDieReport{
		Schema:     "hbm2ecc/bench_ondie/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Quick:      quick,
	}
	validate := 256
	if quick {
		validate = 32
	}
	for _, name := range ondie.StageNames() {
		st, err := ondie.StageByName(name)
		if err != nil {
			return err
		}
		b := OnDieStageBench{Stage: name, Chunks: st.Chunks(), ParityBits: st.ParityBits()}

		dev := dram.New(hbm2.V100(), dram.DefaultRefreshPeriod)
		dev.WriteAll(func(int64) [hbm2.EntryBytes]byte {
			var d [hbm2.EntryBytes]byte
			for i := range d {
				d[i] = 0x5A
			}
			return d
		}, 0)
		b.RawReadNS = timeReads(dev, 1, minTime)
		dev.SetOnDie(st)
		b.CleanReadNS = timeReads(dev, 1, minTime)
		dev.InjectCorruption(2, dram.Corruption{Xor: bitvec.V288{}.FlipBit(0).FlipBit(1)})
		b.ErroredReadNS = timeReads(dev, 2, minTime)

		mask := bitvec.V288{}.FlipBit(0).FlipBit(1)
		n := 0
		t0 := time.Now()
		var sink bitvec.V288
		for time.Since(t0) < minTime {
			for i := 0; i < 1024; i++ {
				sink = st.TransformMask(mask)
			}
			n += 1024
		}
		_ = sink
		b.TransformNS = float64(time.Since(t0).Nanoseconds()) / float64(n)

		res, match, err := ondie.InferCandidate(name, hbm2.V100(),
			ondie.InferOptions{Seed: seed, Validate: validate})
		if err != nil {
			return fmt.Errorf("%s: inference: %w", name, err)
		}
		b.InferExperiments = res.Experiments
		b.InferCells = res.CellsPlanted
		b.InferMS = float64(res.Elapsed.Nanoseconds()) / 1e6
		b.InferExact = match
		if !match {
			return fmt.Errorf("%s: inference did not recover the exact H-matrix", name)
		}
		rep.Stages = append(rep.Stages, b)
	}
	rep.WallMS = float64(time.Since(start).Nanoseconds()) / 1e6

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, b := range rep.Stages {
		fmt.Printf("%-10s read clean %.0fns (raw %.0fns) errored %.0fns, transform %.1fns, infer %d exps in %.1fms exact=%v\n",
			b.Stage, b.CleanReadNS, b.RawReadNS, b.ErroredReadNS, b.TransformNS,
			b.InferExperiments, b.InferMS, b.InferExact)
	}
	fmt.Printf("wrote %s (%.0fms)\n", out, rep.WallMS)
	return nil
}
