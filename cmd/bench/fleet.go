package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"hbm2ecc/internal/core"
	"hbm2ecc/internal/fieldsim"
	"hbm2ecc/internal/fleet"
	"hbm2ecc/internal/stats"
)

// FleetReport is the BENCH_fleet.json schema: the fleet-health plane's
// ingest throughput and the policy-quality ledger at 10k+ simulated
// nodes.
type FleetReport struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Seed       int64   `json:"seed"`
	Quick      bool    `json:"quick"`
	Nodes      int     `json:"nodes"`
	Hours      float64 `json:"hours"`
	Accel      float64 `json:"accel"`
	Scheme     string  `json:"scheme"`
	// Result is the simulation outcome, including the policy-quality
	// ledger (SDC avoided vs capacity lost).
	Result fieldsim.FleetResult `json:"result"`
	// WallMS is the whole run's wall clock (simulation + ingest).
	WallMS float64 `json:"wall_ms"`
	// ReportsPerSec and EventsPerSec are coordinator ingest throughput
	// over the wall clock: report frames and taxonomy events (dedup
	// counts included) per second. RawEventsPerSec counts the simulated
	// soft errors driven through the real decoder per second.
	ReportsPerSec   float64 `json:"reports_per_sec"`
	EventsPerSec    float64 `json:"events_per_sec"`
	RawEventsPerSec float64 `json:"raw_events_per_sec"`
	// Ingest is the per-report ingest latency distribution (in-process
	// coordinator call, measured around each Report).
	Ingest stats.LatencySummary `json:"ingest_latency"`
	// HeapPeakMB is the heap high-water mark sampled during the run —
	// the bounded-memory claim for 10k+ tracked nodes rests on it.
	// HeapEndMB is the post-run, post-GC live heap.
	HeapPeakMB float64 `json:"heap_peak_mb"`
	HeapEndMB  float64 `json:"heap_end_mb"`
	// The WAL leg reruns the identical simulation against a durable
	// coordinator (every acked report crosses the CRC-framed WAL
	// first). WALRatio is its ingest throughput relative to the
	// memory-only leg — the durability overhead, which must stay small.
	WALWallMS        float64 `json:"wal_wall_ms"`
	WALReportsPerSec float64 `json:"wal_reports_per_sec"`
	WALRatio         float64 `json:"wal_ratio"`
}

// latReporter measures each report's ingest latency around the inner
// reporter (percentile math shared with the loadgen via stats).
type latReporter struct {
	inner fleet.Reporter
	hist  *stats.LatencyHist
}

func (r latReporter) Report(ctx context.Context, req fleet.ReportRequest) (fleet.ReportResponse, error) {
	t0 := time.Now()
	resp, err := r.inner.Report(ctx, req)
	r.hist.Observe(time.Since(t0))
	return resp, err
}

// runFleetBench simulates the full fleet-health plane — agents,
// Xid-event pipeline, coordinator, policy — and reports ingest
// throughput, latency percentiles, memory high-water, and the policy
// quality ledger.
func runFleetBench(out string, seed int64, quick bool) error {
	rep := FleetReport{
		Schema:     "hbm2ecc/bench_fleet/v2",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Quick:      quick,
		Nodes:      10_000,
		Hours:      720,
		Accel:      2000,
		Scheme:     "NI:SEC-DED",
	}
	if quick {
		rep.Nodes = 2000
		rep.Hours = 96
	}
	scheme, err := core.SchemeByName(rep.Scheme)
	if err != nil {
		return err
	}

	coord := fleet.NewCoordinator(fleet.CoordinatorOptions{MaxNodes: rep.Nodes + 64})
	var hist stats.LatencyHist

	// Heap high-water sampler: HeapAlloc every 10ms while the run lasts.
	var peak atomic.Uint64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			old := peak.Load()
			if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
				return
			}
		}
	}
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				sample()
			}
		}
	}()

	cfg := fieldsim.FleetConfig{
		Scheme: scheme,
		Nodes:  rep.Nodes,
		Hours:  rep.Hours,
		Accel:  rep.Accel,
		Seed:   seed,
	}
	start := time.Now()
	res, err := fieldsim.RunFleet(context.Background(),
		cfg, latReporter{inner: coord.Loopback(), hist: &hist})
	wall := time.Since(start)
	sample()
	close(stopSampler)
	<-samplerDone
	if err != nil {
		return err
	}

	rep.Result = res
	rep.WallMS = float64(wall.Microseconds()) / 1000
	secs := wall.Seconds()
	rep.ReportsPerSec = float64(res.Reports) / secs
	rep.EventsPerSec = float64(res.XidEvents) / secs
	rep.RawEventsPerSec = float64(res.RawEvents) / secs
	rep.Ingest = hist.Summary()
	rep.HeapPeakMB = float64(peak.Load()) / (1 << 20)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.HeapEndMB = float64(ms.HeapAlloc) / (1 << 20)

	// WAL leg: the identical simulation against a durable coordinator.
	walDir, err := os.MkdirTemp("", "hbm2ecc_bench_wal_")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	coordWAL, err := fleet.OpenCoordinator(fleet.CoordinatorOptions{
		MaxNodes: rep.Nodes + 64,
		StateDir: walDir,
	})
	if err != nil {
		return err
	}
	startWAL := time.Now()
	resWAL, err := fieldsim.RunFleet(context.Background(), cfg, coordWAL.Loopback())
	wallWAL := time.Since(startWAL)
	if err != nil {
		return err
	}
	if err := coordWAL.Close(); err != nil {
		return err
	}
	if resWAL.Reports != res.Reports {
		return fmt.Errorf("bench: WAL leg ingested %d reports, memory leg %d — runs diverged",
			resWAL.Reports, res.Reports)
	}
	rep.WALWallMS = float64(wallWAL.Microseconds()) / 1000
	rep.WALReportsPerSec = float64(resWAL.Reports) / wallWAL.Seconds()
	rep.WALRatio = rep.WALReportsPerSec / rep.ReportsPerSec

	q := res.Quality
	fmt.Printf("fleet: %d nodes x %.0fh (accel %.0fx, %s): %d raw events, %d reports in %.1fs\n",
		rep.Nodes, rep.Hours, rep.Accel, rep.Scheme, res.RawEvents, res.Reports, secs)
	fmt.Printf("ingest: %.0f reports/sec, %.0f events/sec (p50 %.1fµs p99 %.1fµs), heap peak %.1f MB\n",
		rep.ReportsPerSec, rep.EventsPerSec, rep.Ingest.P50MS*1000, rep.Ingest.P99MS*1000, rep.HeapPeakMB)
	fmt.Printf("wal: %.0f reports/sec with durability (%.0f%% of memory-only ingest)\n",
		rep.WALReportsPerSec, 100*rep.WALRatio)
	fmt.Printf("policy: avoided %d/%d SDCs (%.1f%%) for %.2f%% capacity — %.1f SDCs avoided per pct capacity (%d drains, %d retires)\n",
		q.SDCAvoided, q.SDCTotal, 100*q.AvoidedFrac, 100*q.CapacityLostFrac,
		q.AvoidedPerPctCapacity, q.Drained, q.Retired)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
