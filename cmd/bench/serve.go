package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hbm2ecc/internal/bitvec"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/obs"
	"hbm2ecc/internal/serve"
)

// ServeModeBench is one serving configuration's measurements: the
// closed-loop capacity probe plus open-loop points at fractions of that
// capacity.
type ServeModeBench struct {
	// Mode is "single" (MaxBatch 1: one decode dispatch per request) or
	// "batched" (the dynamic micro-batcher).
	Mode     string `json:"mode"`
	MaxBatch int    `json:"max_batch"`
	// Capacity is the closed-loop saturation probe.
	Capacity serve.LoadStats `json:"capacity"`
	// LoadPoints are open-loop runs at 0.5x/1.0x/2.0x of this
	// configuration's own measured capacity.
	LoadPoints []ServeLoadPoint `json:"load_points"`
}

// ServeLoadPoint is one open-loop offered-load measurement.
type ServeLoadPoint struct {
	// Label is the offered load relative to the mode's capacity.
	Label string          `json:"label"`
	Rate  float64         `json:"offered_rate"`
	Stats serve.LoadStats `json:"stats"`
}

// ServeEnginePoint is the single-vs-batched comparison at one modeled
// engine dispatch cost.
type ServeEnginePoint struct {
	// DispatchCostUS is the modeled fixed cost of one decode dispatch,
	// microseconds: 0 is the pure-software floor, >0 models handing the
	// batch to a hardware ECC engine as one transaction.
	DispatchCostUS float64        `json:"engine_dispatch_cost_us"`
	Single         ServeModeBench `json:"single"`
	Batched        ServeModeBench `json:"batched"`
	// SpeedupBatched is batched over single closed-loop capacity.
	SpeedupBatched float64 `json:"speedup_batched"`
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	Schema            string             `json:"schema"`
	GoVersion         string             `json:"go_version"`
	GOMAXPROCS        int                `json:"gomaxprocs"`
	Seed              int64              `json:"seed"`
	Quick             bool               `json:"quick"`
	Scheme            string             `json:"scheme"`
	EntriesPerRequest int                `json:"entries_per_request"`
	Method            string             `json:"method"`
	EnginePoints      []ServeEnginePoint `json:"engine_points"`
	// SpeedupBatched is the headline micro-batching win: batched over
	// single capacity at the modeled hardware-engine dispatch cost.
	SpeedupBatched float64 `json:"speedup_batched"`
	// SpeedupSoftwareOnly is the same ratio at zero dispatch cost.
	SpeedupSoftwareOnly float64 `json:"speedup_software_only"`
}

const serveMethod = "Both configurations are measured at the service tier through the pipelined " +
	"ingress API (Submit/Wait with chunked completion collection — the shape of a multiplexed " +
	"wire protocol carrying many logical requests per connection), not through HTTP: a decode " +
	"costs tens of nanoseconds while an HTTP round trip costs tens of microseconds, so over " +
	"HTTP the transport dominates and the batching signal drowns (the HTTP tier is exercised " +
	"separately by cmd/loadgen and the scripts/check.sh smoke). 'single' pins MaxBatch=1 — one " +
	"decode dispatch per request — and 'batched' runs the dynamic micro-batcher (flush on " +
	"max_batch entries or max_wait). Each pair is measured at two modeled engine dispatch " +
	"costs, installed by wrapping the scheme's batch decoder so every DecodeWireBatch call " +
	"busy-holds for the cost before decoding. 0us is the pure-software floor: the decoder runs " +
	"on the submitting host with no dispatch boundary, and on a GOMAXPROCS=1 host both modes " +
	"then share one core, so the win is bounded by the per-request bookkeeping batching cannot " +
	"remove. 1us models dispatching to a hardware ECC engine as one transaction (doorbell " +
	"write, command issue, completion poll) — the paper's memory-pipeline context, and the " +
	"per-dispatch cost micro-batching exists to amortize; speedup_batched is quoted there, " +
	"with the software-only ratio published alongside. Capacity is a closed-loop probe (the " +
	"submitter keeps the pipeline window full); the load points then offer 0.5x/1.0x/2.0x of " +
	"each configuration's own measured capacity open-loop, with latency measured from intended " +
	"send time so client-side backlog counts against the server. At 2.0x the service must " +
	"shed (bounded queue + per-request deadline) rather than queue unboundedly; shed counts " +
	"and completed-request percentiles are reported per point."

// engineDecoder models a hardware ECC engine's fixed per-dispatch
// transaction cost: each DecodeWireBatch call busy-polls for cost
// before decoding, independent of batch size. This is the cost the
// micro-batcher amortizes — one engine transaction per batch instead of
// one per request.
type engineDecoder struct {
	bd   core.BatchDecoder
	cost time.Duration
}

func (e engineDecoder) DecodeWireBatch(recv []bitvec.V288, out []core.WireResult) {
	deadline := time.Now().Add(e.cost)
	for time.Now().Before(deadline) {
		// Busy-poll: the dispatching core owns the engine's completion
		// register for the duration of the transaction.
	}
	e.bd.DecodeWireBatch(recv, out)
}

// runServeBench measures the online decode tier: single-request-per-
// decode vs dynamic micro-batching at each modeled engine dispatch
// cost, then overload behavior.
func runServeBench(out string, seed int64, quick bool) error {
	const schemeName = "DuetECC"
	s, err := core.SchemeByName(schemeName)
	if err != nil {
		return err
	}

	probeDur := 2 * time.Second
	pointDur := 2 * time.Second
	if quick {
		probeDur = 300 * time.Millisecond
		pointDur = 250 * time.Millisecond
	}

	rep := ServeReport{
		Schema:            "hbm2ecc/bench_serve/v1",
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Seed:              seed,
		Quick:             quick,
		Scheme:            schemeName,
		EntriesPerRequest: 1,
		Method:            serveMethod,
	}

	// The request corpus: single-entry requests, mostly clean with the
	// sampled error classes mixed in (the serving tier's common case).
	smp := errormodel.NewSampler(seed)
	classes := []errormodel.Pattern{errormodel.Bits3, errormodel.Beat1, errormodel.Entry1}
	words := make([][]bitvec.V288, 64)
	for i := range words {
		var data [bitvec.DataBytes]byte
		for b := range data {
			data[b] = byte(i*31 + b)
		}
		wire := s.Encode(data)
		if i%4 == 0 {
			wire = wire.Xor(smp.Sample(classes[i%len(classes)]))
		}
		words[i] = []bitvec.V288{wire}
	}

	bench := func(mode string, maxBatch int, cost time.Duration) (ServeModeBench, error) {
		mb := ServeModeBench{Mode: mode, MaxBatch: maxBatch}
		cfg := serve.Config{
			Schemes:  []core.Scheme{s},
			MaxBatch: maxBatch,
			Registry: obs.NewRegistry(),
		}
		if cost > 0 {
			cfg.DecoderFor = func(sc core.Scheme) core.BatchDecoder {
				return engineDecoder{bd: core.AsBatchDecoder(sc), cost: cost}
			}
		}
		svc, err := serve.New(cfg)
		if err != nil {
			return mb, err
		}
		defer svc.Close()

		bg := context.Background()
		mb.Capacity = serve.RunLoadPipelined(bg, svc, schemeName, words,
			serve.LoadOptions{Duration: probeDur})
		fmt.Printf("serve d=%-3s %-8s capacity: %.0f req/s  p50 %.3fms  p99 %.3fms\n",
			cost, mode, mb.Capacity.RequestsPerSec, mb.Capacity.P50MS, mb.Capacity.P99MS)

		for _, f := range []float64{0.5, 1.0, 2.0} {
			rate := f * mb.Capacity.RequestsPerSec
			st := serve.RunLoadPipelined(bg, svc, schemeName, words,
				serve.LoadOptions{Duration: pointDur, Rate: rate})
			mb.LoadPoints = append(mb.LoadPoints, ServeLoadPoint{
				Label: fmt.Sprintf("%.1fx", f),
				Rate:  rate,
				Stats: st,
			})
			fmt.Printf("serve d=%-3s %-8s %.1fx (%.0f req/s offered): %.0f served  %d shed  p50 %.3fms  p99 %.3fms\n",
				cost, mode, f, rate, st.RequestsPerSec, st.Shed, st.P50MS, st.P99MS)
		}
		return mb, nil
	}

	for _, cost := range []time.Duration{0, time.Microsecond} {
		pt := ServeEnginePoint{DispatchCostUS: float64(cost) / float64(time.Microsecond)}
		if pt.Single, err = bench("single", 1, cost); err != nil {
			return err
		}
		if pt.Batched, err = bench("batched", 0, cost); err != nil { // 0 selects the default micro-batcher config
			return err
		}
		pt.SpeedupBatched = pt.Batched.Capacity.RequestsPerSec / pt.Single.Capacity.RequestsPerSec
		fmt.Printf("micro-batching speedup at d=%s: %.2fx\n", cost, pt.SpeedupBatched)
		rep.EnginePoints = append(rep.EnginePoints, pt)
	}
	rep.SpeedupSoftwareOnly = rep.EnginePoints[0].SpeedupBatched
	rep.SpeedupBatched = rep.EnginePoints[len(rep.EnginePoints)-1].SpeedupBatched

	hw := rep.EnginePoints[len(rep.EnginePoints)-1]
	overload := hw.Batched.LoadPoints[len(hw.Batched.LoadPoints)-1].Stats
	if overload.Shed == 0 {
		fmt.Println("warning: no sheds at 2.0x offered load — overload point not saturating")
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
