// Command beamsim runs simulated neutron-beam experiments on the modeled
// GPU: the displacement-damage studies (Fig. 3) or a full soft-error
// pattern campaign whose mismatch log feeds cmd/classify.
//
// Campaigns are interruptible: with -checkpoint, progress is snapshotted
// atomically after every run, SIGINT/SIGTERM stops the campaign cleanly
// (exit 0) after writing a final checkpoint, and -resume continues from
// the snapshot — producing statistics identical to an uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hbm2ecc/internal/classify"
	"hbm2ecc/internal/experiments"
	"hbm2ecc/internal/microbench"
	"hbm2ecc/internal/obs"
	"hbm2ecc/internal/textplot"
)

func main() {
	exp := flag.String("experiment", "campaign",
		"experiment: campaign | refresh | accumulation | annealing | utilization")
	seed := flag.Int64("seed", 2021, "random seed")
	runs := flag.Int("runs", 300, "microbenchmark runs (campaign)")
	out := flag.String("o", "", "write the campaign event summary as JSON to this file")
	rawLogs := flag.String("logs", "", "write the raw mismatch logs (JSONL) to this file for cmd/classify -in")
	progress := flag.Int("progress", 0,
		"campaign mode: print a one-line status every N runs (0 = silent)")
	checkpoint := flag.String("checkpoint", "",
		"campaign mode: snapshot progress to this file after every run (atomic write)")
	resume := flag.String("resume", "",
		"campaign mode: resume from this checkpoint file (same -seed/-runs required)")
	metrics := flag.String("metrics", "",
		"on exit, print per-phase span durations and dump all metrics in Prometheus text format to this file (\"-\" = stdout)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *exp {
	case "refresh":
		refreshExperiment(*seed)
	case "accumulation":
		accumulationExperiment(*seed)
	case "annealing":
		annealingExperiment(*seed)
	case "utilization":
		utilizationExperiment(*seed)
	case "campaign":
		campaignExperiment(ctx, *seed, *runs, *out, *rawLogs, *progress, *checkpoint, *resume)
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}

	if *metrics != "" {
		fmt.Println("\n== telemetry: per-phase span durations ==")
		if err := obs.DefaultTracer.WritePhaseSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\n== telemetry: injection/event counters ==")
		printCounters(obs.Default.Snapshot(),
			"beam_injected_events_total", "beam_injected_faults_total",
			"beam_corruptions_total", "beam_weak_cells_created_total",
			"microbench_runs_total", "microbench_mismatch_records_total")
		if err := obs.Default.DumpPrometheus(*metrics); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
		if *metrics != "-" {
			fmt.Printf("metrics written to %s\n", *metrics)
		}
	}
}

// printCounters prints the selected counter families from a snapshot.
func printCounters(snap obs.Snapshot, names ...string) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	for _, f := range snap.Families {
		if !want[f.Name] {
			continue
		}
		for _, s := range f.Series {
			label := ""
			for k, v := range s.Labels {
				label += fmt.Sprintf(" %s=%s", k, v)
			}
			fmt.Printf("%s%s: %.0f\n", f.Name, label, s.Value)
		}
	}
}

func refreshExperiment(seed int64) {
	fmt.Println("Damaging a GPU in the beam (displacement damage saturation)...")
	dev, _ := experiments.DamagedGPU(seed)
	fmt.Printf("damaged cells: %d\n\n", dev.WeakCellCount())
	periods := []float64{0.008, 0.012, 0.016, 0.024, 0.032, 0.048, 0.064}
	res, err := experiments.RefreshSweep(dev, periods, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	t := textplot.NewTable("refresh ms", "measured weak cells", "normal-CDF prediction")
	for i := range periods {
		t.AddRow(periods[i]*1000, res.Counts[i], res.Predicted[i])
	}
	fmt.Println("Fig. 3a: weak cells vs refresh period")
	fmt.Println(t)
	fmt.Printf("Fig. 3b fit: retention ~ Normal(mu=%.1fms, sigma=%.1fms), pool ~%.0f cells\n",
		res.FitMu*1000, res.FitSigma*1000, res.FitScale)
}

func accumulationExperiment(seed int64) {
	res, err := experiments.Accumulation(seed, 40, 60)
	if err != nil {
		log.Fatal(err)
	}
	xs := make([]float64, len(res.Fluence))
	ys := make([]float64, len(res.Damaged))
	for i := range xs {
		xs[i] = res.Fluence[i]
		ys[i] = float64(res.Damaged[i])
	}
	fmt.Println("Fig. 3c: cumulative weak cells vs fluence")
	fmt.Print(textplot.Series(xs, ys, 60, 14, false))
	fmt.Printf("linear fit: slope %.3e cells/(n/cm²), R² = %.3f (paper: 0.97)\n",
		res.Fit.Slope, res.Fit.R2)
}

func annealingExperiment(seed int64) {
	dev, b := experiments.DamagedGPU(seed)
	periods := []float64{0.008, 0.048}
	res, err := experiments.Annealing(dev, b, periods, 3.5*3600, seed+2)
	if err != nil {
		log.Fatal(err)
	}
	t := textplot.NewTable("refresh ms", "before", "after 3.5h rest", "relative drop")
	for i := range periods {
		t.AddRow(periods[i]*1000, res.Before[i], res.After[i],
			fmt.Sprintf("%.1f%%", res.RelativeDrop[i]*100))
	}
	fmt.Println("§4 annealing (paper: 26% drop at 8ms, 2.5% at 48ms)")
	fmt.Println(t)
}

func utilizationExperiment(seed int64) {
	pts := experiments.UtilizationSweep(seed, []float64{0.25, 0.5, 1.0}, 60)
	t := textplot.NewTable("utilization", "multi-bit event fraction", "events")
	for _, p := range pts {
		t.AddRow(p.Utilization, fmt.Sprintf("%.3f", p.MultiBit.P), p.Events)
	}
	fmt.Println("§5 utilization sweep: logic-error share grows with memory accesses")
	fmt.Println(t)
}

func campaignExperiment(ctx context.Context, seed int64, runs int, out, rawLogs string, progress int, ckptPath, resumePath string) {
	cfg := experiments.CampaignConfig{Seed: seed, Runs: runs, Ctx: ctx}
	if resumePath != "" {
		ckpt, err := experiments.LoadCampaignCheckpoint(resumePath)
		if err != nil {
			log.Fatalf("loading checkpoint: %v", err)
		}
		cfg.Checkpoint = ckpt
		if ckptPath == "" {
			ckptPath = resumePath
		}
		fmt.Printf("Resuming campaign from %s: %d/%d runs complete.\n",
			resumePath, ckpt.Completed, ckpt.Runs)
	}
	var latest *experiments.CampaignCheckpoint
	if ckptPath != "" {
		cfg.OnCheckpoint = func(c *experiments.CampaignCheckpoint) {
			latest = c
			if err := c.Save(ckptPath); err != nil {
				log.Fatalf("writing checkpoint: %v", err)
			}
		}
	}
	fmt.Printf("Running %d microbenchmark runs in the beam...\n", runs)
	if progress > 0 {
		start := time.Now()
		records := 0
		cfg.OnRun = func(completed, total int, l *microbench.Log) {
			records += len(l.Records)
			if completed%progress == 0 || completed == total {
				fmt.Printf("progress: run %d/%d, %d mismatch records, %s elapsed\n",
					completed, total, records, time.Since(start).Round(time.Millisecond))
			}
		}
	}
	logs, err := experiments.CampaignRun(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if ctx.Err() != nil && len(logs) < runs {
		// Interrupted: the last per-run snapshot is already the final
		// checkpoint; write it once more so a missing/partial file can't
		// slip through, then exit cleanly.
		if ckptPath != "" && latest != nil {
			if err := latest.Save(ckptPath); err != nil {
				log.Fatalf("writing final checkpoint: %v", err)
			}
			fmt.Printf("interrupted after %d/%d runs; resume with -resume %s\n",
				len(logs), runs, ckptPath)
		} else {
			fmt.Printf("interrupted after %d/%d runs (no -checkpoint path; progress not saved)\n",
				len(logs), runs)
		}
		return
	}
	if rawLogs != "" {
		if err := microbench.WriteLogs(rawLogs, logs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("raw mismatch logs written to %s\n", rawLogs)
	}
	an := classify.Analyze(logs, classify.Options{})
	fmt.Printf("events: %d, damaged entries filtered: %d, runs discarded: %d/%d\n",
		len(an.Events), len(an.DamagedEntries), an.DiscardedRuns, an.TotalRuns)
	if out != "" {
		if err := writeJSON(out, summarize(an.Events)); err != nil {
			log.Fatalf("writing event summary: %v", err)
		}
		fmt.Printf("event summary written to %s\n", out)
	}
	fmt.Println("Run cmd/classify for the full Figs. 4/5 and Table 1 breakdown,")
	fmt.Println("or pass -experiment refresh/accumulation/annealing for Fig. 3.")
}

// writeJSON encodes v to path, failing loudly on encode AND close errors
// (a dropped close error can silently truncate the summary on full disks).
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type eventSummary struct {
	Onset       float64 `json:"onset"`
	Class       string  `json:"class"`
	Breadth     int     `json:"breadth"`
	ByteAligned bool    `json:"byte_aligned"`
	Pattern     string  `json:"pattern"`
}

func summarize(events []classify.Event) []eventSummary {
	out := make([]eventSummary, 0, len(events))
	for _, ev := range events {
		out = append(out, eventSummary{
			Onset:       ev.Onset,
			Class:       ev.Class.String(),
			Breadth:     ev.Breadth(),
			ByteAligned: ev.ByteAligned,
			Pattern:     ev.Pattern.String(),
		})
	}
	return out
}
