// Command campaignd is the distributed campaign engine's process
// surface: a coordinator that shards the Monte-Carlo ECC evaluation
// into (scheme, pattern) cells and serves them over HTTP, and a worker
// mode that joins a remote coordinator and executes cells with the
// batch-decoder fast path.
//
// Coordinator (with two embedded workers and a resumable checkpoint):
//
//	campaignd -listen 127.0.0.1:8335 -workers 2 -samples 400000 -checkpoint campaign.ckpt.json
//
// Extra workers joining from other terminals or machines:
//
//	campaignd -join http://127.0.0.1:8335 -workers 2
//
// The coordinator exposes /v1/lease, /v1/complete, /v1/status, /metrics
// and /healthz. SIGINT/SIGTERM drains cleanly; a coordinator restarted
// with -resume skips every checkpointed cell. Cell-level determinism
// makes the merged result bit-identical to a single sequential process
// with the same seed and sample counts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"hbm2ecc/internal/cluster"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/evalmc"
	"hbm2ecc/internal/httpx"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8335", "coordinator listen address")
	join := flag.String("join", "", "join this coordinator URL as a worker process instead of coordinating")
	workers := flag.Int("workers", 0, "embedded workers (coordinator mode; >=1 in -join mode)")
	seed := flag.Int64("seed", 2021, "campaign seed")
	samples := flag.Int("samples", 400_000, "Monte-Carlo samples per sampled pattern class")
	withDSC := flag.Bool("dsc", false, "include the rejected (36,32) DSC organization")
	checkpoint := flag.String("checkpoint", "", "snapshot completed cells to this envelope file (atomic write)")
	resume := flag.String("resume", "", "resume from this envelope file (spec must match the flags)")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Minute, "cell lease TTL before re-queue")
	flag.Parse()

	ctx, stop := httpx.SignalContext()
	defer stop()

	if *join != "" {
		if err := runWorkers(ctx, *join, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runCoordinator(ctx, *listen, *workers, *seed, *samples, *withDSC, *checkpoint, *resume, *leaseTTL); err != nil {
		log.Fatal(err)
	}
}

// runWorkers joins a remote coordinator with n worker loops (>=1).
func runWorkers(ctx context.Context, baseURL string, n int) error {
	if n < 1 {
		n = 1
	}
	host, _ := os.Hostname()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		w, err := cluster.NewWorker(cluster.WorkerOptions{
			ID:      fmt.Sprintf("%s-%d-%d", host, os.Getpid(), i),
			BaseURL: baseURL,
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := w.Run(ctx)
			switch {
			case err == nil:
				log.Printf("worker %s: campaign complete (%d cells, %d trials)", w.ID(), w.Completed(), w.Trials())
			case errors.Is(err, context.Canceled):
				log.Printf("worker %s: interrupted", w.ID())
			default:
				log.Printf("worker %s: %v", w.ID(), err)
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func runCoordinator(ctx context.Context, listen string, workers int, seed int64, samples int, withDSC bool, checkpoint, resume string, leaseTTL time.Duration) error {
	names := core.Table2Names()
	if withDSC {
		names = append(names, "DSC")
	}
	spec := cluster.Spec{
		Schemes:      names,
		Seed:         seed,
		Samples3b:    samples,
		SamplesBeat:  samples,
		SamplesEntry: samples,
		Shards:       1,
	}

	ckptPath := checkpoint
	var ckpt *evalmc.Checkpoint
	if resume != "" {
		env, err := cluster.LoadEnvelope(resume)
		if err != nil {
			return fmt.Errorf("loading envelope: %w", err)
		}
		if !env.Spec.Equal(&spec) {
			return fmt.Errorf("envelope %s was taken under a different campaign spec", resume)
		}
		ckpt = env.Completed
		if ckptPath == "" {
			ckptPath = resume
		}
		log.Printf("resuming campaign from %s: %d cells complete", resume, ckpt.Cells())
	} else if ckptPath != "" {
		ckpt = evalmc.NewCheckpoint(spec.Options())
	}

	copts := cluster.CoordinatorOptions{Spec: spec, LeaseTTL: leaseTTL}
	if ckpt != nil {
		copts.Resume = ckpt.Lookup
		copts.Progress = func(scheme string, p errormodel.Pattern, r evalmc.PatternResult) {
			ckpt.Store(scheme, p, r)
			if ckptPath != "" {
				if err := cluster.NewEnvelope(spec, ckpt).Save(ckptPath); err != nil {
					log.Fatalf("writing envelope: %v", err)
				}
			}
		}
	}
	coord, err := cluster.NewCoordinator(copts)
	if err != nil {
		return err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// The shared daemon bootstrap binds the listener up front (the
	// embedded workers need the port) and drains on cancellation.
	srv, err := httpx.StartDaemon(runCtx, "campaignd", listen, coord.Handler(), cluster.MaxFrame)
	if err != nil {
		return err
	}
	port := srv.Addr().(*net.TCPAddr).Port
	log.Printf("coordinating %d cells on %s (%d embedded workers)", spec.NumCells(), srv.Addr(), workers)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		coord.Run(runCtx)
	}()
	for i := 0; i < workers; i++ {
		w, err := cluster.NewWorker(cluster.WorkerOptions{
			ID:      fmt.Sprintf("embedded-%d", i),
			BaseURL: fmt.Sprintf("http://127.0.0.1:%d", port),
		})
		if err != nil {
			cancel()
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(runCtx); err != nil && runCtx.Err() == nil {
				log.Printf("embedded worker %s: %v", w.ID(), err)
			}
		}()
	}

	// Progress heartbeat for the operator's terminal.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(5 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-coord.Done():
				return
			case <-ticker.C:
				st := coord.Status()
				log.Printf("progress: %d/%d cells done, %d leased, %d pending, %d workers",
					st.Done, st.Total, st.Leased, st.Pending, len(st.Workers))
			}
		}
	}()

	select {
	case <-ctx.Done():
		cancel()
		wg.Wait()
		_ = srv.Wait()
		if ckptPath != "" && ckpt != nil {
			log.Printf("interrupted with %d cells complete; resume with -resume %s", ckpt.Cells(), ckptPath)
		} else {
			log.Printf("interrupted (no -checkpoint path; progress not saved)")
		}
		return nil
	case <-coord.Done():
	}
	cancel()
	wg.Wait()
	if err := srv.Wait(); err != nil {
		return err
	}
	if err := coord.Err(); err != nil {
		return err
	}
	results, err := coord.Results()
	if err != nil {
		return err
	}
	st := coord.Status()
	for _, w := range st.Workers {
		log.Printf("worker %s: %d cells, %d trials, %.0f trials/sec (%d failures)",
			w.ID, w.Completed, w.Trials, w.TrialsPerSec, w.Failures)
	}
	log.Printf("campaign done: %d cells, %d re-queues, %d conflicts, %d evictions",
		st.Total, st.Requeues, st.Conflicts, st.Evictions)
	return evalmc.WriteReport(os.Stdout, results)
}
