// Command codesearch runs the genetic-algorithm search for (72,64)
// SEC-2bEC parity-check matrices (paper §6.1) and prints the best code in
// Crockford Base32 (the paper's Eq. 3 format) plus its column values.
package main

import (
	"flag"
	"fmt"
	"log"

	"hbm2ecc/internal/codesearch"
	"hbm2ecc/internal/gf2"
)

func main() {
	seed := flag.Int64("seed", 2021, "random seed")
	pop := flag.Int("pop", 48, "GA population size")
	gens := flag.Int("gens", 300, "GA generations")
	flag.Parse()

	res := codesearch.Search(codesearch.Options{Seed: *seed, Population: *pop, Generations: *gens})
	fmt.Printf("collisions=%d initial=%d improvement=%.1f%%\n",
		res.Collisions, res.InitialCollisions, res.Improvement()*100)
	h, err := gf2.NewH72(res.Cols)
	if err != nil {
		log.Fatalf("search produced invalid matrix: %v", err)
	}
	txt, err := h.MarshalText()
	if err != nil {
		log.Fatalf("encoding matrix: %v", err)
	}
	fmt.Println("H (Crockford Base32, one row per line):")
	fmt.Println(string(txt))
	fmt.Printf("columns: %#v\n", res.Cols)
}
