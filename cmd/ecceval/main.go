// Command ecceval runs the Monte-Carlo/exhaustive ECC evaluation and
// prints Table 2 (per-pattern SDC risk) and Fig. 8 (Table-1-weighted
// outcome probabilities) for all nine schemes.
//
// The evaluation is interruptible: with -checkpoint, every completed
// (scheme, pattern) cell is snapshotted atomically, SIGINT/SIGTERM stops
// the run cleanly (exit 0), and -resume skips the completed cells —
// yielding results identical to an uninterrupted evaluation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"hbm2ecc/internal/core"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/evalmc"
	"hbm2ecc/internal/obs"
	"hbm2ecc/internal/textplot"
)

func main() {
	seed := flag.Int64("seed", 2021, "random seed")
	samples := flag.Int("samples", 400_000, "Monte-Carlo samples per sampled pattern class (paper used 1e7/1e9)")
	withDSC := flag.Bool("dsc", false, "also evaluate the rejected (36,32) DSC organization (slow decoder)")
	checkpoint := flag.String("checkpoint", "",
		"snapshot each completed (scheme, pattern) cell to this file (atomic write)")
	resume := flag.String("resume", "",
		"resume from this checkpoint file (same -seed/-samples required)")
	metrics := flag.String("metrics", "",
		"instrument every scheme's decode path and dump all metrics in Prometheus text format to this file on exit (\"-\" = stdout)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	schemes := []core.Scheme{
		core.NewSECDED(false, false),
		core.NewSECDED(true, false),
		core.NewDuetECC(),
		core.NewSEC2bEC(false, false),
		core.NewSEC2bEC(true, false),
		core.NewTrioECC(),
		core.NewSSC(false),
		core.NewSSC(true),
		core.NewSSCDSDPlus(),
	}
	if *withDSC {
		schemes = append(schemes, core.NewDSC())
	}
	if *metrics != "" {
		for i, s := range schemes {
			schemes[i] = core.Instrumented(s)
		}
	}
	opts := evalmc.Options{
		Seed: *seed, Samples3b: *samples, SamplesBeat: *samples,
		SamplesEntry: *samples, Parallel: true, Ctx: ctx,
	}
	ckptPath := *checkpoint
	var ckpt *evalmc.Checkpoint
	if *resume != "" {
		loaded, err := evalmc.LoadCheckpoint(*resume)
		if err != nil {
			log.Fatalf("loading checkpoint: %v", err)
		}
		if err := loaded.Compatible(opts); err != nil {
			log.Fatal(err)
		}
		ckpt = loaded
		if ckptPath == "" {
			ckptPath = *resume
		}
		fmt.Printf("Resuming evaluation from %s: %d cells complete.\n", *resume, ckpt.Cells())
	} else if ckptPath != "" {
		ckpt = evalmc.NewCheckpoint(opts)
	}
	if ckpt != nil {
		opts.Resume = ckpt.Lookup
		opts.Progress = func(scheme string, p errormodel.Pattern, r evalmc.PatternResult) {
			ckpt.Store(scheme, p, r)
			if ckptPath != "" {
				if err := ckpt.Save(ckptPath); err != nil {
					log.Fatalf("writing checkpoint: %v", err)
				}
			}
		}
	}
	results, err := evalmc.EvaluateAllCtx(schemes, opts)
	if err != nil {
		// Interrupted: every completed cell is already checkpointed.
		if ckptPath != "" {
			fmt.Printf("interrupted with %d cells complete; resume with -resume %s\n",
				ckpt.Cells(), ckptPath)
		} else {
			fmt.Println("interrupted (no -checkpoint path; progress not saved)")
		}
		return
	}

	fmt.Println("Table 2: SDC risk per error pattern (C = all corrected, D = no SDC)")
	t2 := textplot.NewTable("scheme", "1 Bit", "1 Pin", "1 Byte", "2 Bits", "3 Bits", "1 Beat", "1 Entry")
	for _, r := range evalmc.FormatTable2(results) {
		t2.AddRow(r.Scheme, r.Cells[0], r.Cells[1], r.Cells[2], r.Cells[3], r.Cells[4], r.Cells[5], r.Cells[6])
	}
	fmt.Println(t2)

	fmt.Println("SDC 95% confidence intervals for sampled classes:")
	ci := textplot.NewTable("scheme", "1 Beat SDC", "1 Entry SDC")
	for _, r := range results {
		beat := r.PerPattern[errormodel.Beat1]
		entry := r.PerPattern[errormodel.Entry1]
		blo, bhi := beat.SDCInterval()
		elo, ehi := entry.SDCInterval()
		ci.AddRow(r.Scheme,
			fmt.Sprintf("%.5f%% [%.5f–%.5f]", beat.FracSDC()*100, blo*100, bhi*100),
			fmt.Sprintf("%.5f%% [%.5f–%.5f]", entry.FracSDC()*100, elo*100, ehi*100))
	}
	fmt.Println(ci)

	fmt.Println("Fig. 8: Table-1-weighted outcome probabilities per random event")
	f8 := textplot.NewTable("scheme", "corrected", "detected", "SDC", "SDC reduction vs SEC-DED")
	base := results[0].Weighted()
	for _, r := range results {
		w := r.Weighted()
		f8.AddRow(w.Scheme,
			fmt.Sprintf("%.4f%%", w.DCE*100),
			fmt.Sprintf("%.4f%%", w.DUE*100),
			fmt.Sprintf("%.6f%%", w.SDC*100),
			fmt.Sprintf("%.1f orders of magnitude", evalmc.SDCReduction(base, w)))
	}
	fmt.Println(f8)

	duet := results[2].Weighted()
	trio := results[5].Weighted()
	fmt.Printf("TrioECC uncorrectable-error (DUE) reduction vs DuetECC: %.2fx (paper: 7.87x)\n\n",
		evalmc.DUEReduction(duet, trio))

	// CSC ablation (§7.1): the sanity check helps interleaved binary
	// codewords far more than symbol-based correction.
	iSEC := results[1].PerPattern[errormodel.Entry1]
	duetE := results[2].PerPattern[errormodel.Entry1]
	ssc := results[6].PerPattern[errormodel.Entry1]
	sscCSC := results[7].PerPattern[errormodel.Entry1]
	fmt.Println("CSC ablation on whole-entry SDC (paper: 19x for I:SEC-DED, 2.34x for I:SSC):")
	fmt.Printf("  I:SEC-DED -> DuetECC:   %s\n", reduction(iSEC, duetE))
	fmt.Printf("  I:SSC     -> I:SSC+CSC: %s\n", reduction(ssc, sscCSC))

	if *metrics != "" {
		fmt.Println("\n== telemetry: per-phase span durations ==")
		if err := obs.DefaultTracer.WritePhaseSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if err := obs.Default.DumpPrometheus(*metrics); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
		if *metrics != "-" {
			fmt.Printf("metrics written to %s\n", *metrics)
		}
	}
}

// reduction renders an SDC ratio, falling back to a CI-based lower bound
// when the improved scheme saw no SDC at all in its samples.
func reduction(before, after evalmc.PatternResult) string {
	if after.SDC == 0 {
		_, hi := after.SDCInterval()
		if hi <= 0 {
			return "no SDC in either"
		}
		return fmt.Sprintf(">= %.0fx reduction (no SDC in %d samples)", before.FracSDC()/hi, after.N)
	}
	return fmt.Sprintf("%.2fx reduction", before.FracSDC()/after.FracSDC())
}
