// Command ecceval runs the Monte-Carlo/exhaustive ECC evaluation and
// prints Table 2 (per-pattern SDC risk) and Fig. 8 (Table-1-weighted
// outcome probabilities) for all nine schemes.
//
// The evaluation is interruptible: with -checkpoint, every completed
// (scheme, pattern) cell is snapshotted atomically, SIGINT/SIGTERM stops
// the run cleanly (exit 0), and -resume skips the completed cells —
// yielding results identical to an uninterrupted evaluation.
//
// With -workers N the evaluation runs on the distributed campaign
// engine (internal/cluster) in-process: a coordinator served over
// loopback HTTP with N embedded workers speaking the real wire
// protocol. Cell-level determinism makes the merged result bit-identical
// to a sequential run with the same seed and sample counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"hbm2ecc/internal/cluster"
	"hbm2ecc/internal/core"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/evalmc"
	"hbm2ecc/internal/obs"
	"hbm2ecc/internal/ondie"
)

func main() {
	seed := flag.Int64("seed", 2021, "random seed")
	samples := flag.Int("samples", 400_000, "Monte-Carlo samples per sampled pattern class (paper used 1e7/1e9)")
	workers := flag.Int("workers", 0,
		"run on the distributed campaign engine with this many in-process workers (0 = classic sequential evaluation)")
	withDSC := flag.Bool("dsc", false, "also evaluate the rejected (36,32) DSC organization (slow decoder)")
	checkpoint := flag.String("checkpoint", "",
		"snapshot each completed (scheme, pattern) cell to this file (atomic write)")
	resume := flag.String("resume", "",
		"resume from this checkpoint file (same -seed/-samples required)")
	metrics := flag.String("metrics", "",
		"instrument every scheme's decode path and dump all metrics in Prometheus text format to this file on exit (\"-\" = stdout)")
	wl := flag.Bool("workload", false,
		"run the workload outcome engine instead: GEMM/reduction/DNN kernels over faulted device memory, per-scheme masked/SDC/DUE/crash tables and end-to-end FIT")
	wlRuns := flag.Int("workload-runs", 400, "fault-injection runs per (scheme, kernel) cell with -workload")
	wlSchemes := flag.String("workload-schemes", "",
		"comma-separated scheme list for -workload (\"none\" = ECC off; default none,DuetECC,TrioECC,SSC-DSD+)")
	ondieCode := flag.String("ondie", "",
		"model an on-die ECC stage beneath the rank-level codes: every raw error mask is transformed through the die's silent correct/miscorrect before decode (hamming64, hamming72, hsiao64, sec128)")
	ondieInfer := flag.Bool("ondie-infer", false,
		"run the BEER-style H-matrix reverse-engineering demo against every candidate on-die code and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ondieInfer {
		if err := runOnDieInfer(*seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *wl {
		if err := runWorkload(ctx, *seed, *wlRuns, *wlSchemes, *checkpoint, *resume); err != nil {
			log.Fatal(err)
		}
		return
	}

	stage, err := ondieTransform(*ondieCode)
	if err != nil {
		log.Fatal(err)
	}
	if stage != nil && *workers > 0 {
		log.Fatal("-ondie is not supported with -workers: the cluster wire spec carries no error transform")
	}

	names := core.Table2Names()
	if *withDSC {
		names = append(names, "DSC")
	}

	var results []evalmc.SchemeResult
	if *workers > 0 {
		results, err = runCluster(ctx, names, *workers, *seed, *samples, *checkpoint, *resume)
	} else {
		results, err = runSequential(ctx, names, *seed, *samples, *checkpoint, *resume, *metrics != "", stage)
	}
	if err != nil {
		log.Fatal(err)
	}
	if results == nil {
		return // interrupted; checkpoint messages already printed
	}

	if stage != nil {
		fmt.Printf("on-die ECC stage %s installed: error patterns below are as observed past the die\n\n", stage.Name())
	}
	if err := evalmc.WriteReport(os.Stdout, results); err != nil {
		log.Fatal(err)
	}
	if stage != nil {
		printOnDieStats(stage)
	}

	if *metrics != "" {
		fmt.Println("\n== telemetry: per-phase span durations ==")
		if err := obs.DefaultTracer.WritePhaseSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if err := obs.Default.DumpPrometheus(*metrics); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
		if *metrics != "-" {
			fmt.Printf("metrics written to %s\n", *metrics)
		}
	}
}

// loadOrNewCheckpoint wires the -checkpoint / -resume flags into a
// checkpoint and the path it should be saved to (both nil/empty when
// checkpointing is off).
func loadOrNewCheckpoint(opts evalmc.Options, checkpoint, resume string) (*evalmc.Checkpoint, string, error) {
	path := checkpoint
	if resume != "" {
		loaded, err := evalmc.LoadCheckpoint(resume)
		if err != nil {
			return nil, "", fmt.Errorf("loading checkpoint: %w", err)
		}
		if err := loaded.Compatible(opts); err != nil {
			return nil, "", err
		}
		if path == "" {
			path = resume
		}
		fmt.Printf("Resuming evaluation from %s: %d cells complete.\n", resume, loaded.Cells())
		return loaded, path, nil
	}
	if path != "" {
		return evalmc.NewCheckpoint(opts), path, nil
	}
	return nil, "", nil
}

func interrupted(ckpt *evalmc.Checkpoint, path string) {
	if path != "" {
		fmt.Printf("interrupted with %d cells complete; resume with -resume %s\n", ckpt.Cells(), path)
	} else {
		fmt.Println("interrupted (no -checkpoint path; progress not saved)")
	}
}

// runSequential is the classic single-process evaluation (per-cell
// parallelism via GOMAXPROCS worker streams).
func runSequential(ctx context.Context, names []string, seed int64, samples int, checkpoint, resume string, instrument bool, stage *ondie.Stage) ([]evalmc.SchemeResult, error) {
	schemes := make([]core.Scheme, len(names))
	for i, name := range names {
		s, err := core.SchemeByName(name)
		if err != nil {
			return nil, err
		}
		if instrument {
			s = core.Instrumented(s)
		}
		schemes[i] = s
	}
	opts := evalmc.Options{
		Seed: seed, Samples3b: samples, SamplesBeat: samples,
		SamplesEntry: samples, Parallel: true, Ctx: ctx,
	}
	if stage != nil {
		opts.ErrTransform = stage.TransformMask
		opts.OnDie = stage.Name()
	}
	ckpt, path, err := loadOrNewCheckpoint(opts, checkpoint, resume)
	if err != nil {
		return nil, err
	}
	if ckpt != nil {
		opts.Resume = ckpt.Lookup
		opts.Progress = func(scheme string, p errormodel.Pattern, r evalmc.PatternResult) {
			ckpt.Store(scheme, p, r)
			if path != "" {
				if err := ckpt.Save(path); err != nil {
					log.Fatalf("writing checkpoint: %v", err)
				}
			}
		}
	}
	results, err := evalmc.EvaluateAllCtx(schemes, opts)
	if err != nil {
		interrupted(ckpt, path)
		return nil, nil
	}
	return results, nil
}

// runCluster evaluates on the distributed campaign engine over loopback
// HTTP. Shards is pinned to 1, so the result is bit-identical to a
// sequential (non -workers) run regardless of worker count — and the
// checkpoint format is shared with the sequential path, except that a
// cluster checkpoint records shards=1.
func runCluster(ctx context.Context, names []string, workers int, seed int64, samples int, checkpoint, resume string) ([]evalmc.SchemeResult, error) {
	spec := cluster.Spec{
		Schemes:      names,
		Seed:         seed,
		Samples3b:    samples,
		SamplesBeat:  samples,
		SamplesEntry: samples,
		Shards:       1,
	}
	copts := cluster.CoordinatorOptions{Spec: spec}
	ckpt, path, err := loadOrNewCheckpoint(spec.Options(), checkpoint, resume)
	if err != nil {
		return nil, err
	}
	if ckpt != nil {
		copts.Resume = ckpt.Lookup
		copts.Progress = func(scheme string, p errormodel.Pattern, r evalmc.PatternResult) {
			ckpt.Store(scheme, p, r)
			if path != "" {
				if err := ckpt.Save(path); err != nil {
					log.Fatalf("writing checkpoint: %v", err)
				}
			}
		}
	}
	results, coord, err := cluster.RunLocal(ctx, copts, workers, cluster.WorkerOptions{ID: "ecceval"})
	if err != nil {
		if ctx.Err() != nil {
			interrupted(ckpt, path)
			return nil, nil
		}
		return nil, err
	}
	st := coord.Status()
	fmt.Printf("Distributed campaign: %d cells over %d workers (%d re-queued, %d resumed from checkpoint).\n",
		st.Total, workers, st.Requeues, st.Done-completedByWorkers(st))
	return results, nil
}

func completedByWorkers(st cluster.StatusResponse) int {
	n := 0
	for _, w := range st.Workers {
		n += w.Completed
	}
	return n
}
