package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"hbm2ecc/internal/faults"
	"hbm2ecc/internal/workload"
)

// runWorkload drives the workload outcome engine (-workload): the
// scheme x kernel campaign with mid-run fault injection, reported as
// per-kernel outcome tables plus the end-to-end FIT comparison. It
// shares ecceval's checkpoint discipline: -checkpoint snapshots every
// completed cell, SIGINT exits cleanly, -resume skips completed cells
// with byte-identical results.
func runWorkload(ctx context.Context, seed int64, runs int, schemeList, checkpoint, resume string) error {
	opts := workload.Options{Seed: seed, Runs: runs, Parallel: true, Ctx: ctx}
	if schemeList != "" {
		opts.Schemes = strings.Split(schemeList, ",")
		for _, s := range opts.Schemes {
			if _, err := workload.SchemeFor(s); err != nil {
				return err
			}
		}
	}

	ckpt, path, err := loadOrNewWorkloadCheckpoint(opts, checkpoint, resume)
	if err != nil {
		return err
	}
	if ckpt != nil {
		opts.Resume = ckpt.Lookup
		opts.Progress = func(scheme string, k workload.Kernel, r workload.CellResult) {
			ckpt.Store(scheme, k, r)
			if path != "" {
				if err := ckpt.Save(path); err != nil {
					log.Fatalf("writing checkpoint: %v", err)
				}
			}
		}
	}

	results, err := workload.Campaign(opts)
	if err != nil {
		if ctx.Err() != nil {
			if path != "" {
				fmt.Printf("interrupted with %d cells complete; resume with -resume %s\n", ckpt.Cells(), path)
			} else {
				fmt.Println("interrupted (no -checkpoint path; progress not saved)")
			}
			return nil
		}
		return err
	}
	workload.WriteReport(os.Stdout, results, faults.DefaultSourceFIT)
	return nil
}

// loadOrNewWorkloadCheckpoint mirrors loadOrNewCheckpoint for the
// workload campaign's checkpoint format.
func loadOrNewWorkloadCheckpoint(opts workload.Options, checkpoint, resume string) (*workload.Checkpoint, string, error) {
	path := checkpoint
	if resume != "" {
		loaded, err := workload.LoadCheckpoint(resume)
		if err != nil {
			return nil, "", fmt.Errorf("loading checkpoint: %w", err)
		}
		if err := loaded.Compatible(opts); err != nil {
			return nil, "", err
		}
		if path == "" {
			path = resume
		}
		fmt.Printf("Resuming workload campaign from %s: %d cells complete.\n", resume, loaded.Cells())
		return loaded, path, nil
	}
	if path != "" {
		return workload.NewCheckpoint(opts), path, nil
	}
	return nil, "", nil
}
