package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"hbm2ecc/internal/hbm2"
	"hbm2ecc/internal/ondie"
)

// ondieTransform resolves -ondie into the stage whose TransformMask is
// installed as the evaluator's error transform.
func ondieTransform(name string) (*ondie.Stage, error) {
	if name == "" {
		return nil, nil
	}
	return ondie.StageByName(name)
}

// runOnDieInfer is the -ondie-infer demo: for every candidate on-die
// code, build a black-box device carrying it and run the BEER-style
// inference engine, reporting whether the exact H-matrix was recovered.
func runOnDieInfer(seed int64) error {
	fmt.Println("== BEER-style on-die ECC reverse engineering ==")
	fmt.Println("crafted all-0s retention patterns + canary parity-subset sweeps")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "code\t(n,k)\tchunks\texperiments\tcells planted\tvalidated\texact match\twall clock")
	for _, name := range ondie.StageNames() {
		truth, err := ondie.StageByName(name)
		if err != nil {
			return err
		}
		res, match, err := ondie.InferCandidate(name, hbm2.V100(), ondie.InferOptions{Seed: seed})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "%s\t(%d,%d)\t%d\t%d\t%d\t%d\t%v\t%v\n",
			name, truth.Full.K+truth.Full.R, truth.Full.K, truth.Chunks(),
			res.Experiments, res.CellsPlanted, res.Validated, match, res.Elapsed.Round(1e5))
		if !match {
			w.Flush()
			return fmt.Errorf("%s: recovered H does not match ground truth", name)
		}
	}
	return w.Flush()
}

// printOnDieStats reports the stage's decode telemetry accumulated over
// the evaluation — the observed correction/miscorrection split behind
// the distorted breakdown.
func printOnDieStats(st *ondie.Stage) {
	s := st.Stats()
	total := s.Corrected + s.Miscorrected + s.PassedThrough + s.Undetected
	fmt.Printf("\n== on-die stage %s: decode telemetry over %d erroneous chunks ==\n", st.Name(), total)
	fmt.Printf("corrected %d, miscorrected %d, passed through %d, undetected %d\n",
		s.Corrected, s.Miscorrected, s.PassedThrough, s.Undetected)
}
