// Command decoded is the online ECC decode daemon: it serves the
// paper's entry-level decode fast path (internal/core) as a live HTTP
// service built on the internal/serve micro-batching tier — bounded
// queues, admission control, load shedding with Retry-After, and
// per-scheme degrade-to-detect-only on decoder faults.
//
//	decoded -addr 127.0.0.1:8344
//	decoded -schemes DuetECC,TrioECC -max-batch 256 -max-wait 200us
//
// Endpoints:
//
//	POST /v1/decode  — single + batch JSON decode API
//	GET  /v1/schemes — served schemes and degrade state
//	GET  /metrics    — Prometheus text (serve_* families)
//	GET  /healthz    — liveness + degraded scheme list
//
// Drive it with cmd/loadgen. -single disables micro-batching (every
// request decoded alone) — the baseline configuration cmd/bench -serve
// quantifies against. SIGINT/SIGTERM drains in-flight requests, then
// answers queued ones with shutdown 503s before exiting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"hbm2ecc/internal/core"
	"hbm2ecc/internal/httpx"
	"hbm2ecc/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "HTTP listen address (host:0 picks a free port, printed on startup)")
	schemes := flag.String("schemes", "", "comma-separated scheme labels to serve (default: all Table-2 schemes)")
	maxBatch := flag.Int("max-batch", 256, "micro-batch flush threshold, entries")
	maxWait := flag.Duration("max-wait", 200*time.Microsecond, "micro-batch flush timer")
	maxQueue := flag.Int("queue", 4096, "per-scheme queue bound, entries (admission control sheds past it)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "decode workers per scheme")
	deadline := flag.Duration("deadline", 50*time.Millisecond, "per-request deadline from admission")
	retryAfter := flag.Duration("retry-after", 100*time.Millisecond, "backoff hint on shed responses")
	degradeBudget := flag.Int("degrade-budget", 8, "decoder faults tolerated before a scheme degrades to detect-only")
	single := flag.Bool("single", false, "disable micro-batching: one decode call per request (benchmark baseline)")
	flag.Parse()

	cfg := serve.Config{
		MaxBatch:      *maxBatch,
		MaxWait:       *maxWait,
		MaxQueue:      *maxQueue,
		Workers:       *workers,
		Deadline:      *deadline,
		RetryAfter:    *retryAfter,
		DegradeBudget: *degradeBudget,
	}
	if *single {
		cfg.MaxBatch = 1
	}
	if *schemes != "" {
		for _, name := range strings.Split(*schemes, ",") {
			s, err := core.SchemeByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "decoded:", err)
				os.Exit(1)
			}
			cfg.Schemes = append(cfg.Schemes, s)
		}
	}

	svc, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decoded:", err)
		os.Exit(1)
	}

	ctx, stop := httpx.SignalContext()
	defer stop()

	d, err := httpx.StartDaemon(ctx, "decoded", *addr, svc.Handler(), serve.MaxFrame)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decoded:", err)
		os.Exit(1)
	}
	log.Printf("decoded: serving %d schemes on %s (max_batch=%d max_wait=%s queue=%d deadline=%s)",
		len(svc.Names()), d.URL(), cfg.MaxBatch, cfg.MaxWait, cfg.MaxQueue, cfg.Deadline)

	<-ctx.Done()
	log.Print("decoded: signal received, draining")
	// Order matters: drain the HTTP server first (its in-flight
	// handlers need the service), then close the service, which answers
	// anything still queued with shutdown 503s.
	if err := d.Wait(); err != nil {
		log.Printf("decoded: %v", err)
	}
	svc.Close()
	log.Print("decoded: shut down cleanly")
}
