// Command classify runs a simulated beam campaign and prints the full
// post-processing breakdown: Fig. 4 (classes, breadth, alignment), Fig. 5
// (severity), Table 1 (pattern probabilities), and the intermittent-error
// filtering statistics of §4.
package main

import (
	"flag"
	"fmt"
	"log"

	"hbm2ecc/internal/classify"
	"hbm2ecc/internal/errormodel"
	"hbm2ecc/internal/experiments"
	"hbm2ecc/internal/microbench"
	"hbm2ecc/internal/stats"
	"hbm2ecc/internal/textplot"
)

func main() {
	seed := flag.Int64("seed", 2021, "random seed")
	runs := flag.Int("runs", 300, "microbenchmark runs")
	in := flag.String("in", "", "post-process raw logs from this file (written by cmd/beamsim -logs) instead of running a campaign")
	flag.Parse()

	var an *classify.Analysis
	if *in != "" {
		logs, err := microbench.ReadLogs(*in)
		if err != nil {
			log.Fatal(err)
		}
		an = classify.Analyze(logs, classify.Options{})
	} else {
		an = experiments.Campaign(experiments.CampaignConfig{Seed: *seed, Runs: *runs})
	}
	fmt.Printf("campaign: %d events, %d damaged entries filtered (%d intermittent records), %d/%d runs discarded\n\n",
		len(an.Events), len(an.DamagedEntries), an.IntermittentRecords, an.DiscardedRuns, an.TotalRuns)

	dir := an.IntermittentDirection
	total := dir.OneToZero + dir.ZeroToOne
	if total > 0 {
		fmt.Printf("intermittent error direction: %.2f%% are 1->0 (paper: 99.8%% ± 0.16%%)\n\n",
			100*float64(dir.OneToZero)/float64(total))
	}

	fmt.Println("Fig. 4a: error classes")
	cb := an.ClassBreakdown()
	labels := []string{"SBSE", "SBME", "MBSE", "MBME"}
	vals := make([]float64, 4)
	for c := range cb {
		vals[c] = cb[c].P * 100
	}
	fmt.Print(textplot.Bars(labels, vals, 40))
	fmt.Printf("(paper: SBSE 65%% ± 2.3%%, MBME 28%% ± 2.1%%)\n\n")

	fmt.Println("Fig. 4b: MBME breadth")
	bins, max := an.MBMEBreadth()
	for i, c := range bins.Counts {
		if c > 0 || i < 6 {
			fmt.Printf("  %-18s %d\n", bins.Label(i)+" entries", c)
		}
	}
	fmt.Printf("  broadest: %d entries (paper: 5,359)\n\n", max)

	fmt.Println("Fig. 4c: multi-bit alignment")
	fmt.Printf("  byte-aligned: %v (paper: 74.6%% ± 3.8%%)\n", an.ByteAlignedFraction())
	wa := an.WordsPerEntry(true)
	wn := an.WordsPerEntry(false)
	fmt.Printf("  words/entry byte-aligned:     1w=%d 2w=%d 3w=%d 4w=%d\n", wa[0], wa[1], wa[2], wa[3])
	fmt.Printf("  words/entry non-byte-aligned: 1w=%d 2w=%d 3w=%d 4w=%d\n\n", wn[0], wn[1], wn[2], wn[3])

	fmt.Println("Fig. 5: severity (bits per affected word)")
	for _, aligned := range []bool{true, false} {
		hist, inv, tot := an.SeverityHistogram(aligned)
		name := "byte-aligned"
		maxBits := 8
		if !aligned {
			name = "non-byte-aligned"
			maxBits = 64
		}
		fmt.Printf("  %s (%d observations, %d full inversions):\n", name, tot, inv)
		for n := 2; n <= maxBits; n++ {
			if hist[n] > 0 {
				exp := stats.BinomialPMF(maxBits, n, 0.5)
				fmt.Printf("    %2d bits: %4d (random expectation %.1f%%)\n", n, hist[n], exp*100)
			}
		}
	}
	fmt.Println()

	fmt.Println("Table 1: measured pattern probabilities")
	t := textplot.NewTable("severity", "measured", "95% CI", "paper")
	tab := an.Table1()
	for p := errormodel.Bit1; p < errormodel.NumPatterns; p++ {
		t.AddRow(p.String(),
			fmt.Sprintf("%.2f%%", tab[p].P*100),
			fmt.Sprintf("%.2f–%.2f%%", tab[p].Lo*100, tab[p].Hi*100),
			fmt.Sprintf("%.2f%%", errormodel.Table1[p]*100))
	}
	fmt.Println(t)
}
