// Command obsd is a gpud-inspired health daemon for a simulated HBM2 GPU
// fleet: every device sits in an accelerated soft-error environment, and
// obsd periodically runs the paper's DRAM microbenchmark as a health
// check, classifies the detected errors (SBE/MBE severity, weak-cell vs
// soft), and serves the results over HTTP:
//
//	/metrics — Prometheus text format
//	/healthz — ok/degraded JSON (503 when degraded)
//	/state   — full fleet state JSON
//	/spans   — aggregate health-check phase timings
//
// Run `obsd -once` for a single sweep printed to stdout (no server).
// With -chaos, every device additionally runs under a seeded chaos fault
// plan and the resilient scrub path (retry + weak-row retirement), whose
// counters surface in /metrics as resilience_* families.
//
// obsd shuts down gracefully: SIGINT/SIGTERM stops the check loop, drains
// in-flight health checks, and then shuts the HTTP server down.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hbm2ecc/internal/healthd"
	"hbm2ecc/internal/httpx"
	"hbm2ecc/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	devices := flag.Int("devices", 4, "simulated fleet size")
	interval := flag.Duration("interval", 10*time.Second, "health-check sweep interval")
	seed := flag.Int64("seed", 2021, "random seed for the fleet's fault streams")
	runs := flag.Int("runs", 1, "microbenchmark runs per device per check")
	mtte := flag.Float64("mtte", 5, "per-device mean time to soft-error event, seconds")
	once := flag.Bool("once", false, "run one sweep, print state and metrics, exit")
	chaosOn := flag.Bool("chaos", false, "attach a seeded chaos fault plan and the resilient scrub path to every device")
	checkTimeout := flag.Duration("check-timeout", 30*time.Second, "per-device health-check watchdog timeout")
	flag.Parse()

	d := healthd.New(healthd.Options{
		Devices:      *devices,
		Seed:         *seed,
		CheckRuns:    *runs,
		MTTE:         *mtte,
		Chaos:        *chaosOn,
		CheckTimeout: *checkTimeout,
		Registry:     obs.Default,
	})

	if *once {
		d.CheckOnce()
		d.Drain()
		fmt.Println("== fleet state ==")
		b, err := json.MarshalIndent(d.State(), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(b))
		fmt.Println("== health-check phases ==")
		if err := d.Tracer().WritePhaseSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println("== metrics ==")
		if err := obs.Default.WritePrometheus(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, stop := httpx.SignalContext()
	defer stop()

	// The shared daemon bootstrap hardens the server (timeouts, bounded
	// request bodies) and turns ctx cancellation into a graceful drain —
	// the same scaffolding cmd/campaignd and cmd/decoded run on.
	srv, err := httpx.StartDaemon(ctx, "obsd", *addr, d.Handler(), httpx.DefaultMaxBody)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("obsd: %d simulated devices, checking every %s, serving on %s (chaos=%v)",
		*devices, *interval, srv.Addr(), *chaosOn)

	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		d.Run(ctx, *interval)
	}()

	<-ctx.Done()
	log.Print("obsd: signal received, draining in-flight checks")
	<-loopDone // Run drains in-flight checks before returning
	if err := srv.Wait(); err != nil {
		log.Fatal(err)
	}
	log.Print("obsd: shut down cleanly")
}
