// Command obsd is a gpud-inspired health daemon for a simulated HBM2 GPU
// fleet: every device sits in an accelerated soft-error environment, and
// obsd periodically runs the paper's DRAM microbenchmark as a health
// check, classifies the detected errors (SBE/MBE severity, weak-cell vs
// soft), and serves the results over HTTP:
//
//	/metrics — Prometheus text format
//	/healthz — ok/degraded JSON (503 when degraded)
//	/state   — full fleet state JSON
//	/spans   — aggregate health-check phase timings
//
// Run `obsd -once` for a single sweep printed to stdout (no server).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"hbm2ecc/internal/healthd"
	"hbm2ecc/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	devices := flag.Int("devices", 4, "simulated fleet size")
	interval := flag.Duration("interval", 10*time.Second, "health-check sweep interval")
	seed := flag.Int64("seed", 2021, "random seed for the fleet's fault streams")
	runs := flag.Int("runs", 1, "microbenchmark runs per device per check")
	mtte := flag.Float64("mtte", 5, "per-device mean time to soft-error event, seconds")
	once := flag.Bool("once", false, "run one sweep, print state and metrics, exit")
	flag.Parse()

	d := healthd.New(healthd.Options{
		Devices:   *devices,
		Seed:      *seed,
		CheckRuns: *runs,
		MTTE:      *mtte,
		Registry:  obs.Default,
	})

	if *once {
		d.CheckOnce()
		fmt.Println("== fleet state ==")
		b, err := json.MarshalIndent(d.State(), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(b))
		fmt.Println("== health-check phases ==")
		if err := d.Tracer().WritePhaseSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println("== metrics ==")
		if err := obs.Default.WritePrometheus(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	stop := make(chan struct{})
	go d.Run(*interval, stop)
	log.Printf("obsd: %d simulated devices, checking every %s, serving on %s", *devices, *interval, *addr)
	log.Fatal(http.ListenAndServe(*addr, d.Handler()))
}
