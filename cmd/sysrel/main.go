// Command sysrel evaluates the schemes and prints the system-level
// reliability analyses: Fig. 9 (exascale MTTI/MTTF) and the §7.3
// autonomous-vehicle ISO 26262 study.
package main

import (
	"flag"
	"fmt"

	"hbm2ecc/internal/core"
	"hbm2ecc/internal/evalmc"
	"hbm2ecc/internal/fieldsim"
	"hbm2ecc/internal/sysrel"
	"hbm2ecc/internal/textplot"
)

func main() {
	seed := flag.Int64("seed", 2021, "random seed")
	samples := flag.Int("samples", 400_000, "Monte-Carlo samples per sampled pattern class")
	flag.Parse()

	opts := evalmc.Options{Seed: *seed, Samples3b: *samples, SamplesBeat: *samples,
		SamplesEntry: *samples, Parallel: true}
	schemes := []core.Scheme{
		core.NewSECDED(false, false),
		core.NewDuetECC(),
		core.NewTrioECC(),
		core.NewSSCDSDPlus(),
	}
	var fits []sysrel.GPUFIT
	for _, s := range schemes {
		w := evalmc.Evaluate(s, opts).Weighted()
		fits = append(fits, sysrel.FromWeighted(w, sysrel.A100MemoryGb))
	}

	fmt.Println("Per-GPU FIT rates (12.51 FIT/Gb raw, 40GB HBM2)")
	t := textplot.NewTable("scheme", "raw FIT", "DUE FIT", "SDC FIT", "ISO 26262 (<=10 FIT SDC)")
	for _, g := range fits {
		t.AddRow(g.Scheme, fmt.Sprintf("%.0f", g.RawFIT), fmt.Sprintf("%.2f", g.DUEFIT),
			fmt.Sprintf("%.4f", g.SDCFIT), fmt.Sprintf("%v", g.MeetsISO26262()))
	}
	fmt.Println(t)

	fmt.Println("Fig. 9: exascale supercomputer (paper: Duet DUE 1.6–6.3h, Trio DUE 9.4–37.6h,")
	fmt.Println("Trio MTTF 5.7–22.6 months, Duet MTTF in years, SEC-DED SDC every 22.5h at 0.5EF)")
	sizes := []float64{0.5, 1, 2}
	f9 := textplot.NewTable("scheme", "0.5 EF MTTI", "2 EF MTTI", "0.5 EF MTTF", "2 EF MTTF")
	for _, g := range fits {
		pts := sysrel.Exascale(g, sizes, 0)
		f9.AddRow(g.Scheme,
			fmt.Sprintf("%.1f h", pts[0].MTTIHours),
			fmt.Sprintf("%.1f h", pts[2].MTTIHours),
			fmtMTTF(pts[0].MTTFHours),
			fmtMTTF(pts[2].MTTFHours))
	}
	fmt.Println(f9)

	fmt.Println("§7.3: US autonomous-vehicle fleet (225.8M drivers × 51 min/day, one GPU per car)")
	av := textplot.NewTable("scheme", "fleet SDC/day", "days between SDC", "fleet DUE recoveries/day")
	for _, g := range fits {
		r := sysrel.Automotive(g)
		av.AddRow(r.Scheme, fmt.Sprintf("%.3f", r.SDCPerDay),
			fmt.Sprintf("%.0f", r.DaysBetweenSDC), fmt.Sprintf("%.0f", r.DUEPerDay))
	}
	fmt.Println(av)

	fmt.Println("Monte-Carlo field-simulation cross-check (0.5 EF fleet, 720h wall time):")
	for i, s := range schemes[1:3] { // DuetECC, TrioECC
		sim := fieldsim.Simulate(fieldsim.Config{
			Scheme: s,
			GPUs:   0.5 * sysrel.DefaultGPUsPerExaflop,
			Hours:  720,
			Seed:   *seed + int64(i),
		})
		analytic := sysrel.Exascale(fits[i+1], []float64{0.5}, 0)[0]
		fmt.Printf("  %-8s empirical MTTI %.1fh vs analytical %.1fh (%d events)\n",
			sim.Scheme, sim.MTTIHours(), analytic.MTTIHours, sim.Events)
	}
}

func fmtMTTF(h float64) string {
	switch {
	case h == 0:
		return "-"
	case h > 2*sysrel.HoursPerYear:
		return fmt.Sprintf("%.1f yr", sysrel.HoursToYears(h))
	case h > 1500:
		return fmt.Sprintf("%.1f mo", sysrel.HoursToMonths(h))
	default:
		return fmt.Sprintf("%.1f h", h)
	}
}
